"""Unit tests for NodeContext and the callback base class."""

import numpy as np
import pytest

from repro.core.command import (
    CommandFailed,
    ExecMode,
    NodeContext,
    ServiceCallbacks,
)
from repro.core.scope import ServiceScope
from repro.memory.nsm import NodeSpecificModule
from repro.sim.cluster import Cluster
from tests.conftest import make_system


def make_ctx(mode=ExecMode.INTERACTIVE):
    cluster = Cluster(2)
    nsm = NodeSpecificModule(cluster, 0)
    ctx = NodeContext(0, cluster, nsm, mode, np.random.default_rng(0))
    return cluster, ctx


class TestCharging:
    def test_charge_routes_to_sink(self):
        _c, ctx = make_ctx()
        seen = []
        ctx._charge_sink = lambda node, s: seen.append((node, s))
        ctx.charge(0.5)
        assert seen == [(0, 0.5)]

    def test_charge_without_sink_is_noop(self):
        _c, ctx = make_ctx()
        ctx.charge(1.0)  # no sink attached: silently ignored

    def test_negative_charge_rejected(self):
        _c, ctx = make_ctx()
        with pytest.raises(ValueError):
            ctx.charge(-1.0)
        with pytest.raises(ValueError):
            ctx.charge_shared(-1.0)

    def test_charge_per_block_scales_by_representation(self):
        _c, ctx = make_ctx()
        seen = []
        ctx._charge_sink = lambda node, s: seen.append(s)
        ctx.n_represented = 64
        ctx.charge_per_block(1e-6, n_blocks=2)
        assert seen == [pytest.approx(128e-6)]

    def test_charge_shared_routes_to_shared_sink(self):
        _c, ctx = make_ctx()
        shared = []
        ctx._shared_sink = lambda s: shared.append(s)
        ctx.charge_shared(0.25)
        assert shared == [0.25]


class TestSendBytes:
    def test_send_bytes_scaled_and_routed(self):
        _c, ctx = make_ctx()
        seen = []
        ctx._net_sink = lambda src, dst, b: seen.append((src, dst, b))
        ctx.n_represented = 4
        ctx.send_bytes(1, 100)
        assert seen == [(0, 1, 400)]

    def test_send_to_self_is_free(self):
        _c, ctx = make_ctx()
        seen = []
        ctx._net_sink = lambda *a: seen.append(a)
        ctx.send_bytes(0, 100)
        assert seen == []

    def test_negative_bytes_rejected(self):
        _c, ctx = make_ctx()
        with pytest.raises(ValueError):
            ctx.send_bytes(1, -5)


class TestDefaultCallbacks:
    def test_base_class_is_a_complete_null_service(self):
        """A bare ServiceCallbacks subclass with nothing overridden must
        run to successful completion (every callback has a sane default)."""
        class Bare(ServiceCallbacks):
            name = "bare"

        _c, ents, concord = make_system(n_nodes=2)
        r = concord.execute_command(Bare(),
                                    ServiceScope.of([e.entity_id
                                                     for e in ents]))
        assert r.success
        assert r.stats.coverage == 1.0  # default collective_command handles

    def test_collective_select_default_is_none(self):
        assert ServiceCallbacks.collective_select is None

    def test_command_failed_reason(self):
        f = CommandFailed("nope")
        assert f.reason == "nope"
        assert CommandFailed().reason == ""


class TestDeinitFailure:
    def test_failed_deinit_marks_command_unsuccessful(self):
        class Grumpy(ServiceCallbacks):
            name = "grumpy"

            def service_deinit(self, ctx):
                return ctx.node_id != 0  # node 0 reports failure

        _c, ents, concord = make_system(n_nodes=2)
        r = concord.execute_command(Grumpy(),
                                    ServiceScope.of([e.entity_id
                                                     for e in ents]))
        assert not r.success


class TestSampleCap:
    def test_hash_sample_capped(self):
        from repro import workloads

        captured = []

        class Sampler(ServiceCallbacks):
            name = "sampler"

            def collective_start(self, ctx, role, entity, hash_sample):
                captured.append(len(hash_sample))

        cluster, ents, concord = make_system(
            n_nodes=1, spec=workloads.nasty(1, 512))
        concord.executor.execute(Sampler(),
                                 ServiceScope.of([ents[0].entity_id]),
                                 sample_cap=16)
        assert captured == [16]
