"""Unit tests for batch-mode execution plans."""

import pytest

from repro.core.plan import ExecutionPlan, PlanOp


class TestRecordExecute:
    def test_record_and_len(self):
        p = ExecutionPlan()
        p.record("write", 1, 2)
        p.record("write", 3, 4)
        assert len(p) == 2
        assert list(p)[0] == PlanOp("write", (1, 2))

    def test_execute_dispatches_in_order(self):
        p = ExecutionPlan()
        p.record("a", 1)
        p.record("b", 2)
        p.record("a", 3)
        seen = []
        n = p.execute({"a": lambda x: seen.append(("a", x)),
                       "b": lambda x: seen.append(("b", x))})
        assert n == 3
        assert seen == [("a", 1), ("b", 2), ("a", 3)]
        assert p.executed

    def test_unknown_op_raises(self):
        p = ExecutionPlan()
        p.record("mystery")
        with pytest.raises(KeyError):
            p.execute({})

    def test_double_execute_rejected(self):
        p = ExecutionPlan()
        p.record("a")
        p.execute({"a": lambda: None})
        with pytest.raises(RuntimeError):
            p.execute({"a": lambda: None})

    def test_append_after_execute_rejected(self):
        p = ExecutionPlan()
        p.execute({})
        with pytest.raises(RuntimeError):
            p.record("late")

    def test_ops_of(self):
        p = ExecutionPlan()
        p.record("x", 1)
        p.record("y", 2)
        p.record("x", 3)
        assert [op.args for op in p.ops_of("x")] == [(1,), (3,)]


class TestRefinement:
    def test_reorder(self):
        p = ExecutionPlan()
        for v in (3, 1, 2):
            p.record("op", v)
        p.reorder(key=lambda op: op.args[0])
        assert [op.args[0] for op in p] == [1, 2, 3]

    def test_reorder_after_execute_rejected(self):
        p = ExecutionPlan()
        p.execute({})
        with pytest.raises(RuntimeError):
            p.reorder(key=lambda op: 0)

    def test_clear_resets(self):
        p = ExecutionPlan()
        p.record("a")
        p.execute({"a": lambda: None})
        p.clear()
        assert len(p) == 0 and not p.executed
        p.record("a")  # usable again
