"""Unit tests for the benchmark runner, trajectory, and regression gate."""

import json

import pytest

from repro.obs.bench import (
    SCHEMA_VERSION,
    BaselineError,
    BenchRunner,
    BenchSpec,
    append_records,
    compare,
    diff_table,
    environment_fingerprint,
    gate_selftest,
    load_baseline,
    load_trajectory,
    write_baseline,
)


def _spec(name="t.spec", **kw):
    def fn(ctx, _state):
        ctx.sim("wall_s", 0.5)
        ctx.count("rows", 100)
        ctx.wall("throughput", 1e6, unit="ops/s", higher_is_better=True)

    return BenchSpec(name, fn, **kw)


def _run(spec=None):
    return BenchRunner().run_spec(spec or _spec())[0]


class TestRunner:
    def test_record_schema(self):
        rec = _run()
        assert rec["schema"] == SCHEMA_VERSION
        assert rec["name"] == "t.spec"
        assert rec["runtime_s"] >= 0
        for key in ("python", "numpy", "machine", "git_sha"):
            assert key in rec["env"]
        m = rec["metrics"]["wall_s"]
        assert m == {"value": 0.5, "unit": "s", "kind": "sim",
                     "higher_is_better": False, "gated": True}
        # Host-timing metrics are recorded but not gated by default.
        assert rec["metrics"]["throughput"]["gated"] is False

    def test_param_overrides_do_not_mutate_spec(self):
        captured = {}

        def fn(ctx, _state):
            captured.update(ctx.params)
            ctx.count("n", ctx.params["n"])

        spec = BenchSpec("p", fn, params={"n": 1, "m": 2})
        rec, _ = BenchRunner().run_spec(spec, n=7)
        assert captured == {"n": 7, "m": 2}
        assert rec["params"] == {"n": 7, "m": 2}
        assert spec.params == {"n": 1, "m": 2}

    def test_setup_teardown_and_payload(self):
        events = []
        spec = BenchSpec(
            "s", lambda ctx, state: events.append(("run", state)) or "payload",
            setup=lambda params: "state",
            teardown=lambda state: events.append(("down", state)))
        record, payload = BenchRunner().run_spec(spec)
        assert payload == "payload"
        assert events == [("run", "state"), ("down", "state")]

    def test_repeats_keep_best_wall_and_stable_sim(self):
        ticks = iter([3.0, 1.0, 2.0])

        def fn(ctx, _state):
            ctx.sim("model_s", 0.25)
            ctx.wall("elapsed_s", next(ticks))

        rec, _ = BenchRunner().run_spec(BenchSpec("r", fn, repeats=3))
        assert rec["metrics"]["elapsed_s"]["value"] == 1.0  # best of 3
        assert rec["metrics"]["model_s"]["value"] == 0.25

    def test_sim_metric_varying_across_repeats_is_an_error(self):
        ticks = iter([1.0, 2.0])

        def fn(ctx, _state):
            ctx.sim("model_s", next(ticks))

        with pytest.raises(RuntimeError, match="deterministic"):
            BenchRunner().run_spec(BenchSpec("bad", fn, repeats=2))

    def test_tiers_nest(self):
        r = BenchRunner()
        r.register(_spec("a.quick", tier="quick"))
        r.register(_spec("b.full", tier="full"))
        r.register(_spec("c.figure", tier="figure"))
        assert r.names("quick") == ["a.quick"]
        assert r.names("full") == ["a.quick", "b.full"]
        assert r.names("figure") == ["c.figure"]
        assert r.names() == ["a.quick", "b.full", "c.figure"]

    def test_run_filters_and_unknown_name(self):
        r = BenchRunner()
        r.register(_spec("x.one", tier="quick"))
        r.register(_spec("x.two", tier="quick"))
        assert [rec["name"] for rec in r.run(tier="quick",
                                             filter_substr="two")] \
            == ["x.two"]
        with pytest.raises(KeyError):
            r.run(names=["nope"])

    def test_environment_fingerprint_fields(self):
        env = environment_fingerprint()
        assert env["python"] and env["numpy"] and env["machine"]
        assert isinstance(env["git_sha"], str)

    def test_environment_fingerprint_platform_knobs(self):
        """The knobs that change what a record means — workers, storage,
        placement — are part of the fingerprint, with env-var defaults."""
        env = environment_fingerprint()
        assert env["workers"] >= 1
        assert env["storage"] in ("memory", "mmap", "sqlite")
        assert env["placement"] == "mod"

    def test_environment_fingerprint_extra_overrides_knobs(self):
        env = environment_fingerprint(
            {"workers": 8, "storage": "sqlite", "placement": "hd"})
        assert (env["workers"], env["storage"], env["placement"]) == \
            (8, "sqlite", "hd")

    def test_environment_fingerprint_reads_env_vars(self, monkeypatch):
        monkeypatch.setenv("CONCORD_WORKERS", "4")
        monkeypatch.setenv("CONCORD_STORAGE", "mmap")
        env = environment_fingerprint()
        assert env["workers"] == 4
        assert env["storage"] == "mmap"


class TestTrajectory:
    def test_append_creates_and_extends(self, tmp_path):
        path = tmp_path / "traj.json"
        append_records(path, [_run()])
        append_records(path, [_run()])
        doc = load_trajectory(path)
        assert doc["schema"] == SCHEMA_VERSION
        assert len(doc["records"]) == 2

    def test_malformed_trajectory_raises(self, tmp_path):
        path = tmp_path / "traj.json"
        path.write_text("[1, 2]")
        with pytest.raises(BaselineError, match="malformed"):
            load_trajectory(path)


class TestBaseline:
    def test_roundtrip_latest_wins(self, tmp_path):
        path = tmp_path / "base.json"
        a, b = _run(), _run()
        b["metrics"]["wall_s"]["value"] = 9.0
        write_baseline(path, [a, b])
        loaded = load_baseline(path)
        assert loaded["t.spec"]["metrics"]["wall_s"]["value"] == 9.0

    def test_reads_trajectory_files_too(self, tmp_path):
        path = tmp_path / "traj.json"
        append_records(path, [_run(), _run()])
        assert "t.spec" in load_baseline(path)

    def test_missing_file_message(self, tmp_path):
        with pytest.raises(BaselineError, match="does not exist"):
            load_baseline(tmp_path / "nope.json")

    def test_invalid_json_message(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            load_baseline(path)

    def test_old_schema_message_names_the_fix(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 0, "records": []}))
        with pytest.raises(BaselineError,
                           match="--write-baseline"):
            load_baseline(path)

    def test_record_missing_fields_is_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"schema": SCHEMA_VERSION, "records": [{"name": "x"}]}))
        with pytest.raises(BaselineError, match="malformed"):
            load_baseline(path)


class TestGate:
    def _baseline(self):
        rec = _run()
        return rec, {rec["name"]: json.loads(json.dumps(rec))}

    def test_no_change_no_regression(self):
        rec, base = self._baseline()
        assert not any(d.regressed for d in compare([rec], base, 0.10))

    def test_gated_slowdown_trips(self):
        rec, base = self._baseline()
        rec["metrics"]["wall_s"]["value"] *= 1.5
        diffs = compare([rec], base, 0.25)
        tripped = [d for d in diffs if d.regressed]
        assert [(d.spec, d.metric) for d in tripped] \
            == [("t.spec", "wall_s")]
        assert tripped[0].delta_pct == pytest.approx(50.0)

    def test_within_budget_passes(self):
        rec, base = self._baseline()
        rec["metrics"]["wall_s"]["value"] *= 1.2
        assert not any(d.regressed for d in compare([rec], base, 0.25))

    def test_higher_is_better_direction(self):
        rec, base = self._baseline()
        # Throughput *dropping* is the bad direction — but it is a wall
        # metric, ungated by default, so it must never trip the gate.
        rec["metrics"]["throughput"]["value"] /= 10
        diffs = compare([rec], base, 0.10)
        tp = next(d for d in diffs if d.metric == "throughput")
        assert tp.delta_pct == pytest.approx(90.0)
        assert not tp.regressed
        # Gate it, and the same drop trips.
        rec["metrics"]["throughput"]["gated"] = True
        diffs = compare([rec], base, 0.10)
        assert next(d for d in diffs if d.metric == "throughput").regressed

    def test_new_spec_and_metric_are_not_regressions(self):
        rec, _ = self._baseline()
        diffs = compare([rec], {}, 0.10)
        assert diffs and not any(d.regressed for d in diffs)
        assert all(d.base != d.base for d in diffs)  # NaN baselines

    def test_diff_table_lists_regressions_in_notes(self):
        rec, base = self._baseline()
        rec["metrics"]["wall_s"]["value"] *= 3
        text = diff_table(compare([rec], base, 0.25), 0.25).render()
        assert "REGRESSION t.spec.wall_s" in text
        assert "budget 25%" in text

    def test_gate_selftest_trips(self):
        tripped, table = gate_selftest()
        assert tripped
        assert "REGRESSION selftest.synthetic.wall_s" in table.render()
