"""Unit tests for the sim-time span tracer and its exporters."""

import json

import pytest

from repro.obs import Span, SpanTracer, validate_chrome_trace


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_tracer(**kw):
    clock = FakeClock()
    return clock, SpanTracer(clock, **kw)


class TestRecording:
    def test_span_stamps_sim_time(self):
        clock, tr = make_tracer()
        clock.t = 1.0
        with tr.span("work", node=2):
            clock.t = 3.5
        (s,) = tr.spans
        assert (s.t0, s.t1, s.node) == (1.0, 3.5, 2)
        assert s.duration == 2.5

    def test_nesting_sets_parent(self):
        clock, tr = make_tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                clock.t = 1.0
        outer, inner = tr.spans
        assert outer.parent == -1
        assert inner.parent == outer.seq
        assert outer.t1 >= inner.t1

    def test_add_span_explicit_timestamps(self):
        _clock, tr = make_tracer()
        s = tr.add_span("monitor.scan", 2.0, 5.0, node=1, phase="scan")
        assert s.duration == 3.0
        with pytest.raises(ValueError):
            tr.add_span("bad", 5.0, 2.0)

    def test_instant_zero_duration(self):
        clock, tr = make_tracer()
        clock.t = 7.0
        s = tr.instant("net.drop", node=3, reason="blackhole")
        assert s.t0 == s.t1 == 7.0
        assert s.args["reason"] == "blackhole"

    def test_disabled_records_nothing(self):
        _clock, tr = make_tracer(enabled=False)
        with tr.span("x"):
            pass
        assert tr.add_span("y", 0.0, 1.0) is None
        assert tr.instant("z") is None
        assert len(tr) == 0

    def test_limit_counts_dropped(self):
        _clock, tr = make_tracer(limit=2)
        for i in range(5):
            tr.add_span(f"s{i}", 0.0, 1.0)
        assert len(tr) == 2
        assert tr.dropped == 3
        assert "dropped" in tr.report().render()

    def test_find_and_total(self):
        _clock, tr = make_tracer()
        tr.add_span("a", 0.0, 1.0, node=0, phase="p")
        tr.add_span("a", 0.0, 2.0, node=1, phase="p")
        tr.add_span("b", 0.0, 4.0, node=0)
        assert len(tr.find(name="a")) == 2
        assert tr.total(name="a") == 3.0
        assert tr.total(name="a", node=1) == 2.0
        assert tr.total(phase="p") == 3.0


class TestExporters:
    def test_jsonl_round_trip(self):
        _clock, tr = make_tracer()
        tr.add_span("a", 0.5, 1.5, node=2, phase="p", extra=7)
        tr.instant("b")
        text = tr.to_jsonl()
        spans = SpanTracer.spans_from_jsonl(text)
        assert [s.name for s in spans] == ["a", "b"]
        assert spans[0].node == 2 and spans[0].phase == "p"
        assert spans[0].args == {"extra": 7}
        assert spans[0].duration == 1.0

    def test_jsonl_deterministic(self):
        def build():
            _clock, tr = make_tracer()
            tr.add_span("a", 0.0, 1.0, node=1)
            tr.instant("b", node=2)
            return tr.to_jsonl()

        assert build() == build()

    def test_chrome_trace_schema(self):
        _clock, tr = make_tracer()
        tr.add_span("a", 0.001, 0.002, node=3, phase="collective")
        tr.instant("ev")
        doc = tr.to_chrome_trace()
        n = validate_chrome_trace(doc)
        events = doc["traceEvents"]
        assert n == len(events)
        x = [e for e in events if e["ph"] == "X"]
        assert x[0]["ts"] == pytest.approx(1000.0)   # seconds -> us
        assert x[0]["dur"] == pytest.approx(1000.0)
        assert x[0]["tid"] == 3
        i = [e for e in events if e["ph"] == "i"]
        assert i[0]["tid"] == -1                      # cluster-wide track
        names = {e["args"]["name"] for e in events if e["ph"] == "M"
                 and e["name"] == "thread_name"}
        assert {"cluster", "node 3"} <= names

    def test_write_files(self, tmp_path):
        _clock, tr = make_tracer()
        tr.add_span("a", 0.0, 1.0)
        chrome = tr.write_chrome_trace(tmp_path / "t.trace.json")
        jsonl = tr.write_jsonl(tmp_path / "t.jsonl")
        assert validate_chrome_trace(chrome) > 0
        assert SpanTracer.spans_from_jsonl(jsonl.read_text())[0].name == "a"

    def test_validate_rejects_bad_documents(self, tmp_path):
        with pytest.raises(ValueError):
            validate_chrome_trace({"nope": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"name": "x", "ph": "X",
                                                    "pid": 0}]})
        bad = {"traceEvents": [{"name": "x", "ph": "X", "pid": 0, "tid": 0,
                                "ts": 0.0, "dur": -1.0}]}
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"traceEvents": [
            {"name": "x", "ph": "?", "pid": 0, "tid": 0, "ts": 0.0}]}))
        with pytest.raises(ValueError):
            validate_chrome_trace(p)

    def test_report_aggregates_by_name(self):
        _clock, tr = make_tracer()
        tr.add_span("a", 0.0, 1.0)
        tr.add_span("a", 0.0, 3.0)
        table = tr.report()
        assert table.x_values == ["a"]
        assert table.get("count").values == [2]
        assert table.get("total_s").values == [4.0]
        assert table.get("mean_s").values == [2.0]


class TestSpanValue:
    def test_to_from_dict(self):
        s = Span("n", 1.0, 2.0, node=4, phase="p", args={"k": 1}, seq=9,
                 parent=3)
        assert Span.from_dict(s.to_dict()) == s
