"""End-to-end observability: threaded metrics, command spans, capture."""

import pytest

from repro.core.command import ExecMode
from repro.core.concord import ConCORD
from repro.core.config import ConCORDConfig
from repro.core.executor import PhaseBreakdown
from repro.core.scope import ServiceScope
from repro.harness.trace import run_traced_null
from repro.obs import ObsConfig, Span, active_capture, capture_traces
from repro.services.null import NullService
from repro.sim.cluster import Cluster
from repro import workloads


def bring_up(n_nodes=4, pages=512, seed=7, trace=True, **cfg):
    cluster = Cluster(n_nodes, cost="new-cluster", seed=seed)
    ents = workloads.instantiate(cluster,
                                 workloads.moldy(n_nodes, pages, seed=seed))
    concord = ConCORD(cluster, ConCORDConfig(obs=ObsConfig(trace=trace),
                                             **cfg))
    concord.initial_scan()
    return cluster, ents, concord


class TestThreading:
    def test_registry_is_shared_across_layers(self):
        _cluster, _ents, concord = bring_up(use_network=True)
        reg = concord.metrics()
        assert reg is concord.obs.registry
        assert _cluster.network.registry is reg
        assert concord.tracing.obs.registry is reg
        # Monitors scanned at bring-up; the network carried the updates.
        assert reg.value("monitor.scans") > 0
        assert reg.value("monitor.pages_hashed") > 0
        assert reg.value("dht.updates_routed") > 0
        assert reg.value("net.msgs_sent") > 0

    def test_stats_views_read_registry(self):
        cluster, _ents, concord = bring_up(use_network=True)
        reg = concord.metrics()
        assert cluster.network.stats.msgs_sent == reg.value("net.msgs_sent")
        assert (concord.tracing.stats.updates_routed
                == reg.value("dht.updates_routed"))

    def test_monitor_scan_spans_recorded(self):
        _cluster, _ents, concord = bring_up()
        scans = concord.obs.tracer.find(name="monitor.scan")
        assert len(scans) > 0
        assert all(s.duration > 0 for s in scans)
        assert {s.node for s in scans} == set(range(4))

    def test_metrics_report_and_trace_dump(self, tmp_path):
        _cluster, _ents, concord = bring_up()
        assert "monitor.scans" in concord.metrics_report().render()
        p = concord.trace_dump(tmp_path / "t.trace.json")
        assert p.exists()
        doc = concord.trace_dump(fmt="chrome")
        assert doc["traceEvents"]
        assert concord.trace_dump(fmt="jsonl").startswith("{")
        with pytest.raises(ValueError):
            concord.trace_dump(fmt="protobuf")

    def test_tracing_off_by_default(self):
        cluster = Cluster(2, cost="new-cluster", seed=0)
        workloads.instantiate(cluster, workloads.moldy(2, 64, seed=0))
        concord = ConCORD(cluster)
        concord.initial_scan()
        assert not concord.obs.tracing
        assert len(concord.obs.tracer) == 0
        # The registry still counts (it backs the stats views).
        assert concord.metrics().value("monitor.scans") > 0


class TestCommandSpans:
    def test_phase_breakdown_matches_spans_on_null_service(self):
        """The acceptance criterion: per-phase span totals equal the
        CommandResult's phase walls (they are derived from the spans)."""
        table, result, obs = run_traced_null(n_nodes=4, pages_per_entity=512,
                                             n_represented=16)
        for ph, bd in result.phases.items():
            span_total = obs.tracer.total(f"cmd.phase.{ph}")
            assert span_total == pytest.approx(bd.wall, rel=0.01)
        # The per-node split reconstructs too.
        for ph, bd in result.phases.items():
            cpu = obs.tracer.total("cmd.cpu", phase=ph)
            assert cpu >= bd.max_node_cpu or cpu == 0.0
        assert table.get("span_wall_ms").values == pytest.approx(
            table.get("bookkeeping_wall_ms").values, rel=0.01)

    def test_from_spans_equals_legacy_bookkeeping(self):
        """from_spans on executor-built spans == the old critical-path
        loop run directly over the accounting dicts."""
        _cluster, ents, concord = bring_up()
        eids = [e.entity_id for e in ents]
        ex = concord.executor
        result = concord.execute_command(NullService(), ServiceScope.of(eids))
        for phase, bd in result.phases.items():
            # Legacy algorithm, replayed from the executor's accounting.
            cost = ex.cost
            max_cpu = max_total = crit_cpu = crit_comm = 0.0
            for node in range(_cluster.n_nodes):
                cpu = ex._cpu.get((node, phase), 0.0)
                comm = (ex._tx.get((node, phase), 0)
                        + ex._rx.get((node, phase), 0)) / cost.link_bw
                if cpu > max_cpu:
                    max_cpu = cpu
                if cpu + comm > max_total:
                    max_total = cpu + comm
                    crit_cpu, crit_comm = cpu, comm
            assert bd.max_node_cpu == pytest.approx(max_cpu)
            assert bd.cpu == pytest.approx(crit_cpu)
            assert bd.comm == pytest.approx(crit_comm)

    def test_from_spans_critical_path_split(self):
        """cpu/comm come from the same (critical-path) node."""
        spans = [
            Span("cmd.cpu", 0.0, 3.0, node=0, phase="p"),    # cpu-heavy
            Span("cmd.cpu", 0.0, 1.0, node=1, phase="p"),
            Span("cmd.comm", 1.0, 4.0, node=1, phase="p"),   # critical path
        ]
        bd = PhaseBreakdown.from_spans(spans, shared=0.5, barrier=0.25,
                                       extra_wall=0.125)
        assert bd.max_node_cpu == 3.0
        assert (bd.cpu, bd.comm) == (1.0, 3.0)
        assert bd.wall == pytest.approx(4.0 + 0.5 + 0.25 + 0.125)
        assert PhaseBreakdown.from_spans([]).wall == 0.0

    def test_command_counters(self):
        _cluster, ents, concord = bring_up(trace=False)
        eids = [e.entity_id for e in ents]
        result = concord.execute_command(NullService(), ServiceScope.of(eids))
        reg = concord.metrics()
        assert reg.value("cmd.executions") == 1
        assert reg.value("cmd.handled") == result.stats.handled
        assert reg.get("cmd.wall_s").count == 1


class TestDeterminism:
    def test_same_seed_byte_identical_jsonl(self):
        _t1, _r1, obs1 = run_traced_null(n_nodes=3, pages_per_entity=256,
                                         n_represented=8, seed=11)
        _t2, _r2, obs2 = run_traced_null(n_nodes=3, pages_per_entity=256,
                                         n_represented=8, seed=11)
        assert obs1.tracer.to_jsonl() == obs2.tracer.to_jsonl()
        assert obs1.registry.to_jsonl() == obs2.registry.to_jsonl()

    def test_different_seed_different_trace(self):
        _t1, _r1, obs1 = run_traced_null(n_nodes=3, pages_per_entity=256,
                                         n_represented=8, seed=11)
        _t2, _r2, obs2 = run_traced_null(n_nodes=3, pages_per_entity=256,
                                         n_represented=8, seed=12)
        assert obs1.tracer.to_jsonl() != obs2.tracer.to_jsonl()


class TestCapture:
    def test_capture_overrides_config_and_collects(self):
        with capture_traces() as cap:
            assert active_capture() is cap
            # Config asks for no tracing; the capture session wins.
            _cluster, _ents, concord = bring_up(trace=False)
        assert active_capture() is None
        assert cap.runs == [concord.obs]
        assert concord.obs.tracing
        assert len(concord.obs.tracer) > 0

    def test_capture_custom_config(self):
        with capture_traces(ObsConfig(trace=True, trace_limit=2)) as cap:
            bring_up()
        assert cap.runs[0].tracer.limit == 2
        assert cap.runs[0].tracer.dropped > 0

    def test_no_capture_no_registration(self):
        _cluster, _ents, concord = bring_up()
        assert active_capture() is None
        assert concord.obs.tracing  # from its own config, not a capture
