"""Unit tests for the sim-clock metrics sampler and its time-series."""

import pytest

from repro.obs import MetricsRegistry, MetricsSampler, SampleSeries
from repro.sim.engine import SimEngine


def make_sampler(period_s=0.001):
    engine = SimEngine()
    reg = MetricsRegistry()
    return engine, reg, MetricsSampler(engine, reg, period_s=period_s)


class TestSampleSeries:
    def test_append_and_read(self):
        s = SampleSeries(["a", "b"])
        s.append(0.0, {"a": 1.0, "b": 2.0})
        s.append(0.1, {"a": 3.0, "b": 4.0})
        assert s.values("a") == [1.0, 3.0]
        assert s.last("b") == 4.0
        assert len(s) == 2

    def test_time_order_enforced(self):
        s = SampleSeries(["a"])
        s.append(0.5, {"a": 1.0})
        with pytest.raises(ValueError):
            s.append(0.4, {"a": 2.0})

    def test_unknown_column_rejected(self):
        s = SampleSeries(["a"])
        with pytest.raises(KeyError):
            s.append(0.0, {"zzz": 1.0})
        with pytest.raises(KeyError):
            s.values("zzz")

    def test_rate_windows(self):
        s = SampleSeries(["n"])
        for i in range(4):
            s.append(i * 0.1, {"n": float(i * 10)})
        rates = s.rate("n")
        assert len(rates) == 3
        for (t0, t1, r) in rates:
            assert r == pytest.approx(100.0)
            assert t1 - t0 == pytest.approx(0.1)

    def test_windows_min_max_last_mean(self):
        s = SampleSeries(["v"])
        for i, v in enumerate([1.0, 5.0, 3.0, 2.0, 8.0]):
            s.append(i * 0.1, {"v": v})
        wins = s.windows("v", every=2)
        assert [w.n for w in wins] == [2, 2, 1]
        w0 = wins[0]
        assert (w0.min, w0.max, w0.last) == (1.0, 5.0, 5.0)
        assert w0.mean == pytest.approx(3.0)
        assert wins[2].last == 8.0

    def test_window_at_locates_the_containing_ticks(self):
        s = SampleSeries(["v"])
        for i in range(5):
            s.append(i * 0.01, {"v": 0.0})
        assert s.window_at(0.025) == (0.02, 0.03)
        assert s.window_at(0.0) == (0.0, 0.0)
        assert s.window_at(99.0) == (0.03, 0.04)
        with pytest.raises(ValueError):
            SampleSeries(["v"]).window_at(0.0)

    def test_jsonl_roundtrip_byte_identical(self):
        s = SampleSeries(["b", "a"])
        s.append(0.0, {"a": 1.5, "b": 0.0})
        s.append(0.001, {"a": 2.5, "b": 1.0})
        text = s.to_jsonl()
        back = SampleSeries.from_jsonl(text)
        assert back.to_jsonl() == text
        assert back.columns == ["a", "b"]

    def test_empty_series_exports_empty(self):
        assert SampleSeries(["a"]).to_jsonl() == ""


class TestMetricsSampler:
    def test_ticks_cover_the_armed_span(self):
        engine, reg, sampler = make_sampler(period_s=0.001)
        c = reg.counter("work.done")
        sampler.track_counter("work.done")
        sampler.arm(deadline=0.01)
        for i in range(10):
            engine.at((i + 0.5) * 0.001, c.inc)
        engine.run()
        series = sampler.stop()
        # anchor at t=0 plus one tick per period through the deadline
        assert len(series) == 11
        assert series.times[0] == 0.0
        assert series.times[-1] == pytest.approx(0.01)
        assert series.values("work.done") == [float(i) for i in range(11)]

    def test_counter_total_sums_labels(self):
        engine, reg, sampler = make_sampler()
        reg.counter("q", kind="a").inc(2)
        reg.counter("q", kind="b").inc(3)
        sampler.track_counter_total("q")
        sampler.arm(deadline=0.0)
        assert sampler.series.last("q") == 5.0

    def test_quantile_probe_empty_histogram_is_zero(self):
        engine, reg, sampler = make_sampler()
        sampler.track_quantile("p95", "lat", 0.95)
        sampler.arm(deadline=0.0)
        assert sampler.series.last("p95") == 0.0

    def test_quantile_probe_tracks_histogram(self):
        engine, reg, sampler = make_sampler(period_s=0.01)
        h = reg.histogram("lat")
        sampler.track_quantile("p50", "lat", 0.5)
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        sampler.arm(deadline=0.0)
        assert sampler.series.last("p50") == pytest.approx(2.0)

    def test_fn_probe_and_gauge(self):
        engine, reg, sampler = make_sampler()
        g = reg.gauge("ring.n_nodes")
        g.set(4)
        sampler.track_gauge("ring.n_nodes")
        sampler.track_fn("coverage", lambda: 0.75)
        sampler.arm(deadline=0.0)
        assert sampler.series.last("ring.n_nodes") == 4.0
        assert sampler.series.last("coverage") == 0.75

    def test_declarations_rejected_once_armed(self):
        engine, reg, sampler = make_sampler()
        sampler.track_fn("x", lambda: 0.0)
        sampler.arm(deadline=0.0)
        with pytest.raises(RuntimeError):
            sampler.track_fn("y", lambda: 0.0)

    def test_duplicate_column_rejected(self):
        engine, reg, sampler = make_sampler()
        sampler.track_fn("x", lambda: 0.0)
        with pytest.raises(ValueError):
            sampler.track_fn("x", lambda: 1.0)

    def test_stop_records_closing_sample(self):
        engine, reg, sampler = make_sampler(period_s=1.0)
        c = reg.counter("n")
        sampler.track_counter("n")
        sampler.arm(deadline=0.0)   # single anchor tick
        engine.at(0.25, c.inc)
        engine.run()
        series = sampler.stop()
        assert series.times == [0.0, 0.25]
        assert series.last("n") == 1.0

    def test_stopped_sampler_cannot_rearm(self):
        engine, reg, sampler = make_sampler()
        sampler.track_fn("x", lambda: 0.0)
        sampler.arm(deadline=0.0)
        sampler.stop()
        with pytest.raises(RuntimeError):
            sampler.arm(deadline=1.0)

    def test_bad_period_rejected(self):
        engine = SimEngine()
        with pytest.raises(ValueError):
            MetricsSampler(engine, MetricsRegistry(), period_s=0.0)


class TestConcordSamplerIntegration:
    def test_serve_with_sample_period_records_series(self):
        from repro.core.concord import ConCORD
        from repro.core.config import ConCORDConfig
        from repro.sim.cluster import Cluster
        from repro.workloads import TrafficSpec, instantiate, moldy

        cluster = Cluster(n_nodes=4, cost="new-cluster", seed=7)
        instantiate(cluster, moldy(4, 64, seed=7))
        with ConCORD.from_config(
                cluster, ConCORDConfig(use_network=False)) as concord:
            concord.initial_scan()
            spec = TrafficSpec(n_clients=4, duration_s=0.02,
                               arrival="poisson", rate_per_client=500,
                               seed=3)
            report = concord.serve(spec, sample_period_s=2e-3)
            series = concord._last_sampler.series
        assert report.completed > 0
        assert len(series) >= 10
        assert series.last("serve.completed") == float(report.completed)
        assert series.last("coverage") == 1.0
        assert series.last("ring.n_nodes") == 4.0
        # the standard columns are all present
        for col in ("serve.submitted", "serve.rejected",
                    "serve.cache.hits", "serve.cache.violations",
                    "serve.p95_interactive", "serve.queue_depth"):
            assert col in series.columns

    def test_same_seed_series_byte_identical(self):
        from repro.core.concord import ConCORD
        from repro.core.config import ConCORDConfig
        from repro.sim.cluster import Cluster
        from repro.workloads import TrafficSpec, instantiate, moldy

        def once() -> str:
            cluster = Cluster(n_nodes=3, cost="new-cluster", seed=5)
            instantiate(cluster, moldy(3, 32, seed=5))
            with ConCORD.from_config(
                    cluster, ConCORDConfig(use_network=False)) as concord:
                concord.initial_scan()
                spec = TrafficSpec(n_clients=2, duration_s=0.01,
                                   arrival="poisson",
                                   rate_per_client=1000, seed=9)
                concord.serve(spec, sample_period_s=1e-3)
                return concord._last_sampler.series.to_jsonl()

        assert once() == once()
