"""Unit tests for the labelled metrics registry."""

import json

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.registry import QUANTILE_SAMPLE_CAP


class TestLabels:
    def test_same_labels_same_metric(self):
        reg = MetricsRegistry()
        a = reg.counter("net.msgs_dropped", reason="blackhole")
        b = reg.counter("net.msgs_dropped", reason="blackhole")
        assert a is b

    def test_label_order_never_matters(self):
        reg = MetricsRegistry()
        a = reg.counter("x", a=1, b=2)
        b = reg.counter("x", b=2, a=1)
        assert a is b

    def test_different_labels_different_series(self):
        reg = MetricsRegistry()
        a = reg.counter("net.msgs_dropped", reason="blackhole")
        b = reg.counter("net.msgs_dropped", reason="injected")
        assert a is not b
        a.inc(3)
        b.inc(4)
        assert reg.value("net.msgs_dropped", reason="blackhole") == 3
        assert reg.total("net.msgs_dropped") == 7

    def test_unlabelled_and_labelled_coexist(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c", k="v").inc(2)
        assert reg.total("c") == 3
        assert reg.value("c") == 1

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        assert reg.counter("c", node=3) is reg.counter("c", node="3")


class TestKinds:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")
        with pytest.raises(TypeError):
            reg.histogram("m")

    def test_kind_conflict_across_labels_raises(self):
        reg = MetricsRegistry()
        reg.counter("m", a=1)
        with pytest.raises(TypeError):
            reg.gauge("m", b=2)

    def test_value_on_histogram_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        with pytest.raises(TypeError):
            reg.value("h")

    def test_gauge_set_inc_dec(self):
        g = Gauge()
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value == 4.0

    def test_histogram_summary(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 2.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(52.5 / 3)
        assert h.bucket_counts == [1, 1, 1]
        assert h.min == 0.5 and h.max == 50.0


class TestQuantiles:
    def test_matches_numpy_percentile_exactly(self):
        """Under the sample cap the quantiles are exact — pinned against
        the NumPy linear-interpolation reference (ISSUE satellite)."""
        rng = np.random.default_rng(7)
        vals = rng.lognormal(mean=-2.0, sigma=1.5, size=1000)
        h = Histogram()
        for v in vals:
            h.observe(v)
        for q in (0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(
                np.percentile(vals, q * 100), rel=1e-12)
        assert h.p50 == pytest.approx(np.percentile(vals, 50))
        assert h.p95 == pytest.approx(np.percentile(vals, 95))
        assert h.p99 == pytest.approx(np.percentile(vals, 99))

    def test_small_histograms(self):
        h = Histogram()
        h.observe(3.0)
        assert h.p50 == h.p99 == 3.0
        h.observe(1.0)
        assert h.p50 == pytest.approx(2.0)  # numpy midpoint semantics

    def test_empty_histogram_is_zero(self):
        assert Histogram().p50 == 0.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)
        with pytest.raises(ValueError):
            Histogram().quantile(-0.1)

    def test_beyond_cap_estimate_is_bounded_and_sane(self):
        rng = np.random.default_rng(3)
        vals = rng.exponential(scale=0.01, size=QUANTILE_SAMPLE_CAP + 5000)
        h = Histogram()
        for v in vals:
            h.observe(v)
        assert h.count > QUANTILE_SAMPLE_CAP  # estimation regime
        for q in (0.50, 0.95, 0.99):
            est = h.quantile(q)
            ref = float(np.percentile(vals, q * 100))
            assert h.min <= est <= h.max
            # Bucket interpolation lands in the right decade bucket, so
            # the estimate is order-of-magnitude correct; with skewed
            # mass inside a decade-wide bucket it can be a few-x off.
            assert ref / 4 <= est <= ref * 4, (q, est, ref)
        # Quantiles are monotone in q even in the estimation regime.
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.95, 0.99, 1.0)]
        assert qs == sorted(qs)

    def test_reset_clears_samples(self):
        h = Histogram()
        h.observe(5.0)
        h.reset()
        assert h.samples == [] and h.p50 == 0.0

    def test_snapshot_and_report_carry_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        snap = reg.snapshot()["lat"]
        assert snap["p50"] == pytest.approx(50.5)
        assert snap["p95"] == pytest.approx(95.05)
        assert snap["p99"] == pytest.approx(99.01)
        text = reg.report("m").render()
        assert "p50" in text and "p95" in text and "p99" in text


class TestLifecycle:
    def test_reset_is_in_place(self):
        """Held references keep working after reset — no stale objects."""
        reg = MetricsRegistry()
        c = reg.counter("net.msgs_sent")
        c.inc(10)
        reg.reset(prefix="net.")
        assert c.value == 0
        assert reg.counter("net.msgs_sent") is c
        c.inc()
        assert reg.value("net.msgs_sent") == 1

    def test_reset_prefix_scoped(self):
        reg = MetricsRegistry()
        reg.counter("net.msgs_sent").inc(5)
        reg.counter("dht.updates_routed").inc(7)
        reg.reset(prefix="net.")
        assert reg.value("net.msgs_sent") == 0
        assert reg.value("dht.updates_routed") == 7

    def test_get_or_create_returns_counter_object(self):
        reg = MetricsRegistry()
        assert isinstance(reg.counter("c"), Counter)
        assert reg.get("missing") is None
        assert reg.value("missing") == 0


class TestExport:
    def test_snapshot_sorted_and_labelled(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a", x="1").inc(1)
        snap = reg.snapshot()
        assert list(snap) == ["a{x=1}", "b"]
        assert snap["b"] == {"kind": "counter", "value": 2}

    def test_jsonl_deterministic_and_parseable(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("z.last").inc(1)
            reg.counter("a.first", reason="x").inc(2)
            reg.histogram("h").observe(0.5)
            return reg

        a, b = build().to_jsonl(), build().to_jsonl()
        assert a == b
        recs = [json.loads(line) for line in a.splitlines()]
        assert [r["name"] for r in recs] == ["a.first", "h", "z.last"]
        assert recs[0]["labels"] == {"reason": "x"}

    def test_report_is_renderable_table(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.histogram("h").observe(2.0)
        text = reg.report("m").render()
        assert "c" in text and "h" in text and "value" in text

    def test_empty_registry_report_renders_cleanly(self):
        text = MetricsRegistry().report("m").render()
        assert "no metrics recorded" in text

    def test_report_prefix_filters_names(self):
        reg = MetricsRegistry()
        reg.counter("net.msgs_sent").inc(5)
        reg.counter("dht.updates_routed").inc(7)
        text = reg.report("m", prefix="net.").render()
        assert "net.msgs_sent" in text
        assert "dht.updates_routed" not in text

    def test_report_empty_prefix_selection_renders_cleanly(self):
        reg = MetricsRegistry()
        reg.counter("net.msgs_sent").inc(5)
        text = reg.report("m", prefix="zzz.").render()
        assert "no metrics under prefix 'zzz.'" in text
        assert "net.msgs_sent" not in text

    def test_report_after_prefix_reset_keeps_rows(self):
        """reset() zeroes in place — the rows stay, with zero values."""
        reg = MetricsRegistry()
        reg.counter("net.msgs_sent").inc(5)
        reg.reset(prefix="net.")
        text = reg.report("m", prefix="net.").render()
        assert "net.msgs_sent" in text
