"""Unit tests for phase-attributed cProfile sessions."""

import re
import time

import pytest

from repro.obs import NULL_PROFILE, ObsConfig, ProfileSession
from repro.obs.profile import NullProfile


def _busy(n: int = 20_000) -> int:
    return sum(i * i for i in range(n))


class TestProfileSession:
    def test_phases_accumulate_and_switch(self):
        prof = ProfileSession()
        prof.begin_phase("collective")
        _busy()
        prof.begin_phase("local")
        _busy()
        prof.end()
        assert sorted(prof.phases) == ["collective", "local"]
        assert prof.total_time("collective") > 0
        assert prof.total_time("local") > 0

    def test_repeated_phase_aggregates(self):
        prof = ProfileSession()
        for _ in range(2):
            prof.begin_phase("collective")
            _busy()
            prof.end()
        assert prof.phases == ["collective"]

    def test_end_is_idempotent(self):
        prof = ProfileSession()
        prof.begin_phase("p")
        prof.end()
        prof.end()

    def test_hotspots_table(self):
        prof = ProfileSession(top_n=5)
        prof.begin_phase("local")
        _busy()
        prof.end()
        table = prof.hotspots()
        assert table.x_values  # something was profiled
        assert all(x.startswith("local:") for x in table.x_values)
        assert len(table.x_values) <= 5 * len(prof.phases)
        text = table.render()
        assert "tottime_ms" in text and "calls" in text

    def test_collapsed_stacks_format(self):
        prof = ProfileSession()
        prof.begin_phase("collective")
        _busy()
        prof.end()
        folded = prof.collapsed_stacks()
        assert folded
        # Every line: semicolon-joined frames rooted at the phase, then a
        # space and an integer microsecond count (flamegraph.pl format).
        for line in folded.splitlines():
            assert re.fullmatch(r"collective(;[^;]+){1,2} \d+", line), line

    def test_write_artifacts(self, tmp_path):
        prof = ProfileSession()
        prof.begin_phase("p")
        _busy()
        prof.end()
        paths = prof.write(tmp_path, "run")
        assert [p.name for p in paths] == ["run.hotspots.txt",
                                           "run.folded.txt"]
        assert (tmp_path / "run.hotspots.txt").read_text()

    def test_print_stats_text(self):
        prof = ProfileSession()
        prof.begin_phase("p")
        _busy()
        prof.end()
        assert "tottime" in prof.print_stats("p")


class TestNullProfile:
    def test_noop_and_shared(self):
        assert NULL_PROFILE.enabled is False
        NULL_PROFILE.begin_phase("x")
        NULL_PROFILE.end()
        assert isinstance(NULL_PROFILE, NullProfile)

    def test_disabled_hooks_cost_under_5pct_of_null_command(self):
        """ISSUE acceptance: profiling off must cost <5% on the null
        command.  The executor makes 5 hook calls per command (4
        begin_phase + 1 end); measure their cost directly and bound it
        against a measured null-command wall time."""
        from repro.harness.trace import run_traced_null

        prof = NullProfile()
        reps = 200_000
        t0 = time.perf_counter()
        for _ in range(reps):
            prof.begin_phase("init")
            prof.begin_phase("collective")
            prof.begin_phase("local")
            prof.begin_phase("teardown")
            prof.end()
        per_command = (time.perf_counter() - t0) / reps

        t0 = time.perf_counter()
        run_traced_null()
        null_command = time.perf_counter() - t0

        assert per_command < 0.05 * null_command, (
            f"disabled profiling hooks cost {per_command * 1e6:.2f}us per "
            f"command vs {null_command * 1e3:.1f}ms null command")


class TestExecutorIntegration:
    def _run_null(self, profile: bool):
        from repro.harness.trace import run_traced_null

        _table, result, obs = run_traced_null(
            obs_config=ObsConfig(trace=True, profile=profile))
        return result, obs

    def test_profile_off_by_default(self):
        from repro.harness.trace import run_traced_null

        _t, _r, obs = run_traced_null()
        assert obs.profiler is NULL_PROFILE
        assert not obs.profiling

    def test_executor_phases_attributed(self):
        _result, obs = self._run_null(profile=True)
        assert obs.profiling
        assert set(obs.profiler.phases) == {"init", "collective", "local",
                                            "teardown"}
        # The collective phase does the real work (order selection, DHT
        # scans); its profile must contain executor frames.
        labels = obs.profiler.hotspots("collective").x_values
        assert any("executor.py" in x for x in labels)

    def test_profiler_disabled_after_execute(self):
        """execute() must not leave a cProfile enabled (nesting would
        crash the next command or bench run)."""
        import cProfile

        _result, _obs = self._run_null(profile=True)
        p = cProfile.Profile()
        p.enable()   # raises if another profiler is still active
        p.disable()

    def test_profile_report_requires_enable(self):
        from repro.core.concord import ConCORD
        from repro.sim.cluster import Cluster

        concord = ConCORD(Cluster(2, cost="new-cluster", seed=0))
        with pytest.raises(RuntimeError, match="profile=True"):
            concord.profile_report()
