"""Pin the bisect bucket selection against the old linear scan.

``Histogram.observe`` used to walk the bounds tuple per observation
(O(bounds) on the hot path); it now bisects.  The two must place every
float — bound-exact values, infinities, NaN, negatives — in the same
bucket, so the old loop lives on here as the reference implementation.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.registry import DEFAULT_BOUNDS, Histogram


def reference_bucket(bounds: tuple, v: float) -> int:
    """The pre-bisect linear scan, verbatim."""
    for i, bound in enumerate(bounds):
        if v <= bound:
            return i
    return len(bounds)


def bucket_of(bounds: tuple, v: float) -> int:
    h = Histogram(bounds)
    h.observe(v)
    return h.bucket_counts.index(1)


EDGE_VALUES = [
    0.0, -0.0, -1.0, -1e300, 1e300,
    float("inf"), float("-inf"), float("nan"),
    *DEFAULT_BOUNDS,                       # exactly on each bound
    *(b * (1 - 1e-12) for b in DEFAULT_BOUNDS),
    *(b * (1 + 1e-12) for b in DEFAULT_BOUNDS),
]


class TestBucketEquivalence:
    def test_edge_values_match_reference(self):
        for v in EDGE_VALUES:
            want = reference_bucket(DEFAULT_BOUNDS, v)
            assert bucket_of(DEFAULT_BOUNDS, v) == want, v

    def test_nan_lands_in_overflow(self):
        # The one spot bisect and the loop could diverge: every `NaN <=
        # bound` is False, so the loop overflowed; bisect_left would
        # return 0 without the explicit guard.
        assert bucket_of(DEFAULT_BOUNDS, float("nan")) == len(DEFAULT_BOUNDS)

    @given(st.floats(allow_nan=True, allow_infinity=True))
    def test_any_float_matches_reference(self, v):
        assert bucket_of(DEFAULT_BOUNDS, v) == \
            reference_bucket(DEFAULT_BOUNDS, v)

    @given(st.lists(st.floats(min_value=1e-9, max_value=1e4,
                              allow_nan=False), min_size=1, max_size=50),
           st.integers(0, 2**32 - 1))
    def test_random_streams_produce_identical_buckets(self, bounds_src, seed):
        bounds = tuple(sorted(set(bounds_src)))
        rng = np.random.default_rng(seed)
        values = rng.uniform(-1.0, 2e4, size=200).tolist() \
            + list(bounds)                  # hit every bound exactly
        h = Histogram(bounds)
        want = [0] * (len(bounds) + 1)
        for v in values:
            h.observe(v)
            want[reference_bucket(bounds, float(v))] += 1
        assert h.bucket_counts == want
        assert h.count == len(values)
