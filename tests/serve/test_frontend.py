"""End-to-end tests of the query-serving frontend."""

import pytest

from repro.obs import ObsConfig, Observability
from repro.queries.interface import QueryInterface
from repro.serve import QoSClass, QueryFrontend, RejectReason, ServeConfig
from tests.conftest import make_system


def build(serve_cfg=None, seed=17, trace=False):
    cluster, ents, concord = make_system(seed=seed)
    q = QueryInterface(cluster, concord.tracing)
    obs = Observability(clock=lambda: cluster.engine.now,
                        config=ObsConfig(trace=trace))
    fe = QueryFrontend(cluster, q, serve_cfg or ServeConfig(), obs=obs)
    h = int(next(iter(concord.tracing.shards[0].hashes())))
    return cluster, concord, q, fe, h


def drain(cluster, fe, submits):
    """Submit [(op, args, kwargs)] at t=now, run the engine, return responses."""
    got = []
    for op, args, kw in submits:
        fe.submit(op, args, on_done=got.append, **kw)
    cluster.engine.run()
    return got


class TestServing:
    def test_single_request_answer_matches_uncached(self):
        cluster, _c, q, fe, h = build()
        (resp,) = drain(cluster, fe, [("num_copies", (h,),
                                       {"issuing_node": 1})])
        assert not resp.rejected
        assert resp.answer == q.num_copies(h, 1)
        assert resp.latency_s >= fe.cfg.interactive_window_s

    def test_identical_requests_coalesce(self):
        cluster, _c, _q, fe, h = build()
        got = drain(cluster, fe,
                    [("num_copies", (h,), {"client_id": i})
                     for i in range(5)])
        assert len(got) == 5
        assert sum(r.coalesced for r in got) == 4
        assert len({r.value for r in got}) == 1
        assert fe.obs.registry.value("serve.coalesced") == 4

    def test_second_round_hits_cache(self):
        cluster, _c, _q, fe, h = build()
        drain(cluster, fe, [("num_copies", (h,), {})])
        got = drain(cluster, fe, [("num_copies", (h,), {})])
        assert got[0].cache_hit
        # Hits occupy the CPU for the hit cost, not the query latency.
        assert got[0].latency_s == pytest.approx(
            fe.cfg.interactive_window_s + fe.cfg.cache_hit_cost_s)

    def test_cache_disabled_never_hits(self):
        cluster, _c, _q, fe, h = build(ServeConfig(cache=False))
        drain(cluster, fe, [("num_copies", (h,), {})])
        got = drain(cluster, fe, [("num_copies", (h,), {})])
        assert not got[0].cache_hit
        assert fe.obs.registry.value("serve.cache.hits") == 0

    def test_mixed_batch_nodewise_and_collective(self):
        cluster, concord, q, fe, h = build()
        eids = tuple(sorted(cluster.all_entity_ids()))
        got = drain(cluster, fe, [
            ("num_copies", (h,), {}),
            ("entities", (h,), {"issuing_node": 2}),
            ("sharing", (eids,), {}),
            ("num_shared_content", (eids, 2), {}),
        ])
        by_op = {r.request.op: r for r in got}
        assert by_op["num_copies"].answer == q.num_copies(h, 0)
        assert by_op["entities"].answer == q.entities(h, 2)
        assert by_op["sharing"].answer == q.sharing(list(eids))
        assert by_op["num_shared_content"].answer == \
            q.num_shared_content(list(eids), 2)

    def test_qos_classes_have_separate_windows(self):
        cfg = ServeConfig(interactive_window_s=1e-5, batch_window_s=1e-3)
        cluster, _c, _q, fe, h = build(cfg)
        got = drain(cluster, fe, [
            ("num_copies", (h,), {"qos": QoSClass.INTERACTIVE}),
            ("num_copies", (h,), {"qos": QoSClass.BATCH}),
        ])
        lat = {r.request.qos: r.latency_s for r in got}
        assert lat[QoSClass.INTERACTIVE] < lat[QoSClass.BATCH]

    def test_unknown_op_rejected_synchronously(self):
        cluster, _c, _q, fe, _h = build()
        got = []
        fe.submit("frobnicate", (1,), on_done=got.append)
        assert len(got) == 1  # before the engine even runs
        assert got[0].rejected
        assert got[0].answer.reason is RejectReason.BAD_REQUEST

    def test_queue_full_sheds(self):
        cluster, _c, _q, fe, h = build(ServeConfig(queue_limit=3))
        got = drain(cluster, fe,
                    [("num_copies", (h,), {}) for _ in range(6)])
        shed = [r for r in got if r.rejected]
        assert len(shed) == 3
        assert all(r.answer.reason is RejectReason.QUEUE_FULL for r in shed)
        assert fe.obs.registry.value("serve.rejected",
                                     reason="queue_full") == 3

    def test_rate_limit_sheds(self):
        cluster, _c, _q, fe, h = build(
            ServeConfig(rate_limit_qps=100.0, rate_burst=2))
        got = drain(cluster, fe,
                    [("num_copies", (h,), {}) for _ in range(5)])
        limited = [r for r in got if r.rejected]
        assert len(limited) == 3
        assert all(r.answer.reason is RejectReason.RATE_LIMITED
                   for r in limited)
        assert all(r.answer.retry_after_s > 0 for r in limited)

    def test_max_batch_splits_into_batches(self):
        cluster, _c, _q, fe, h = build(ServeConfig(max_batch=4))
        got = drain(cluster, fe,
                    [("num_copies", (h,), {}) for _ in range(10)])
        assert len(got) == 10
        assert fe.obs.registry.value("serve.batches") == 3

    def test_verify_mode_clean_run(self):
        cluster, _c, _q, fe, h = build(ServeConfig(verify_cache=True))
        for _ in range(3):
            drain(cluster, fe, [("num_copies", (h,), {}),
                                ("entities", (h,), {})])
        assert fe.obs.registry.value("serve.cache.violations") == 0

    def test_batch_span_traced(self):
        cluster, _c, _q, fe, h = build(trace=True)
        drain(cluster, fe, [("num_copies", (h,), {})])
        spans = [s for s in fe.obs.tracer.spans if s.name == "serve.batch"]
        assert len(spans) == 1
        assert spans[0].t1 > spans[0].t0

    def test_report_accounts_everything(self):
        cluster, _c, _q, fe, h = build()
        drain(cluster, fe, [("num_copies", (h,), {}) for _ in range(4)]
              + [("frobnicate", (1,), {})])
        rep = fe.report()
        assert rep.submitted == 5
        assert rep.admitted == 4
        assert rep.rejected == 1
        assert rep.completed == 4
        assert rep.coalesced == 3
        assert rep.qps > 0
        assert rep.coalesce_rate == pytest.approx(3 / 4)
        table = rep.summary_table().render()
        assert "coalesce_rate" in table and "cache_hit_rate" in table

    def test_pending_drains_to_zero(self):
        cluster, _c, _q, fe, h = build()
        fe.submit("num_copies", (h,))
        assert fe.pending == 1
        cluster.engine.run()
        assert fe.pending == 0


class TestFacade:
    def test_concord_frontend_shares_registry(self):
        _cl, _e, concord = make_system(seed=5)
        fe = concord.frontend()
        assert fe is concord.frontend()  # memoized
        h = int(next(iter(concord.tracing.shards[0].hashes())))
        fe.submit("num_copies", (h,))
        _cl.engine.run()
        report = concord.metrics_report().render()
        assert "serve.admitted" in report

    def test_frontend_config_conflict_raises(self):
        _cl, _e, concord = make_system(seed=5)
        concord.frontend()
        with pytest.raises(ValueError):
            concord.frontend(ServeConfig(queue_limit=7))
