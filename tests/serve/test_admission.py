"""Unit tests for admission control (token bucket + bounded queues)."""

import pytest

from repro.serve import (AdmissionController, QoSClass, Rejected,
                         RejectReason, Request, ServeConfig, TokenBucket)


def req(op="num_copies", qos=QoSClass.INTERACTIVE):
    return Request(op, (1,), qos=qos)


class TestTokenBucket:
    def test_burst_then_exhaustion(self):
        b = TokenBucket(rate=10.0, burst=3)
        assert [b.try_take(0.0) for _ in range(4)] == [True, True, True,
                                                      False]

    def test_refills_on_sim_clock(self):
        b = TokenBucket(rate=10.0, burst=1)
        assert b.try_take(0.0)
        assert not b.try_take(0.05)   # half a token accrued
        assert b.try_take(0.1)        # one full token at t=0.1

    def test_caps_at_burst(self):
        b = TokenBucket(rate=100.0, burst=2)
        b.try_take(0.0)
        # A long idle period cannot bank more than `burst` tokens.
        assert [b.try_take(100.0) for _ in range(3)] == [True, True, False]

    def test_time_to_token(self):
        b = TokenBucket(rate=10.0, burst=1)
        assert b.time_to_token(0.0) == 0.0
        b.try_take(0.0)
        assert b.time_to_token(0.0) == pytest.approx(0.1)
        assert b.time_to_token(0.05) == pytest.approx(0.05)

    def test_disabled_bucket_always_admits(self):
        b = TokenBucket(rate=None, burst=1)
        assert all(b.try_take(0.0) for _ in range(100))
        assert b.time_to_token(0.0) == 0.0

    def test_rate_zero_is_disabled(self):
        # rate=0 means "no limit", not "limit of nothing": an
        # always-rejecting bucket would answer retry_after_s=inf.
        b = TokenBucket(rate=0.0, burst=1)
        assert all(b.try_take(i * 0.001) for i in range(100))
        assert b.time_to_token(0.0) == 0.0
        assert ServeConfig(rate_limit_qps=0.0).rate_limit_qps == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=float("nan"), burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)
        with pytest.raises(ValueError):
            ServeConfig(rate_limit_qps=-1.0)

    def test_time_to_token_never_negative_or_inf(self):
        import math
        for rate in (1e-300, 1e-9, 0.3, 7.0, 1e9):
            b = TokenBucket(rate=rate, burst=1)
            b.try_take(0.0)
            for now in (0.0, 1e-12, 0.5, 1e6):
                dt = b.time_to_token(now)
                assert math.isfinite(dt)
                assert dt >= 0.0

    def test_granted_retry_yields_a_token(self):
        # Fractional-token starvation regression: a client that waits
        # exactly time_to_token() must succeed, even when float rounding
        # leaves the balance at 0.999... under odd rates.
        for rate in (3.0, 7.0, 9.99, 0.3, 1234.567):
            b = TokenBucket(rate=rate, burst=1)
            now = 0.0
            for _ in range(50):
                assert b.try_take(now), (rate, now)
                now += b.time_to_token(now)

    def test_deterministic_sequence(self):
        def run():
            b = TokenBucket(rate=1000.0, burst=4)
            return [b.try_take(i * 0.0007) for i in range(50)]
        assert run() == run()


class TestAdmissionController:
    def test_admits_when_room(self):
        ac = AdmissionController(ServeConfig())
        assert ac.admit(req(), queue_depth=0, now=0.0) is None

    def test_unknown_op_is_bad_request(self):
        ac = AdmissionController(ServeConfig())
        verdict = ac.admit(req(op="frobnicate"), queue_depth=0, now=0.0)
        assert isinstance(verdict, Rejected)
        assert verdict.reason is RejectReason.BAD_REQUEST

    def test_full_queue_sheds_with_retry_hint(self):
        cfg = ServeConfig(queue_limit=2)
        ac = AdmissionController(cfg)
        verdict = ac.admit(req(), queue_depth=2, now=0.0)
        assert verdict.reason is RejectReason.QUEUE_FULL
        assert verdict.retry_after_s == cfg.interactive_window_s
        batch = ac.admit(req(qos=QoSClass.BATCH), queue_depth=2, now=0.0)
        assert batch.retry_after_s == cfg.batch_window_s

    def test_full_queue_does_not_burn_tokens(self):
        ac = AdmissionController(ServeConfig(queue_limit=1,
                                             rate_limit_qps=1000.0,
                                             rate_burst=1))
        assert ac.admit(req(), queue_depth=1, now=0.0) is not None
        # The queue-full rejection above must not have consumed the token.
        assert ac.admit(req(), queue_depth=0, now=0.0) is None

    def test_rate_limit_sheds_with_eta(self):
        ac = AdmissionController(ServeConfig(rate_limit_qps=10.0,
                                             rate_burst=1))
        assert ac.admit(req(), queue_depth=0, now=0.0) is None
        verdict = ac.admit(req(), queue_depth=0, now=0.0)
        assert verdict.reason is RejectReason.RATE_LIMITED
        assert verdict.retry_after_s == pytest.approx(0.1)
