"""Tests for the traffic workload driver (workloads/traffic.py)."""

import pytest

from repro.queries.interface import QueryInterface
from repro.serve import QueryFrontend, ServeConfig
from repro.workloads import TrafficDriver, TrafficSpec
from tests.conftest import make_system


def build_frontend(serve_cfg=None, seed=23):
    cluster, ents, concord = make_system(seed=seed)
    q = QueryInterface(cluster, concord.tracing)
    return QueryFrontend(cluster, q, serve_cfg or ServeConfig(),
                         obs=concord.obs), concord


class TestTrafficSpec:
    def test_defaults_valid(self):
        TrafficSpec()

    @pytest.mark.parametrize("kw", [
        {"n_clients": 0}, {"duration_s": 0.0}, {"arrival": "carrier-pigeon"},
        {"rate_per_client": 0.0}, {"think_time_s": -1.0}, {"zipf_s": -0.1},
        {"population": 0}, {"nodewise_frac": 1.5}, {"batch_frac": -0.2},
        {"n_groups": 0}, {"collective_k": 0}, {"churn_rate": -1.0},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            TrafficSpec(**kw)

    def test_replace(self):
        assert TrafficSpec().replace(n_clients=3).n_clients == 3


class TestOpenLoop:
    def test_poisson_run_completes_all_admitted(self):
        fe, _c = build_frontend()
        spec = TrafficSpec(n_clients=4, duration_s=0.05, arrival="poisson",
                           rate_per_client=2000.0, seed=1)
        drv = TrafficDriver(fe, spec)
        rep = drv.run()
        assert rep.submitted > 0
        assert rep.completed == rep.admitted
        assert drv.n_responses == rep.submitted
        assert rep.duration_s == spec.duration_s

    def test_same_seed_is_deterministic(self):
        def run():
            fe, _c = build_frontend()
            spec = TrafficSpec(n_clients=4, duration_s=0.05, seed=9)
            rep = TrafficDriver(fe, spec).run()
            return (rep.submitted, rep.completed, rep.coalesced,
                    rep.cache_hits, rep.qps)
        assert run() == run()

    def test_different_seed_differs(self):
        def run(seed):
            fe, _c = build_frontend()
            rep = TrafficDriver(fe, TrafficSpec(n_clients=4,
                                                duration_s=0.05,
                                                seed=seed)).run()
            return (rep.submitted, rep.qps)
        assert run(1) != run(2)

    def test_zipf_traffic_hits_cache(self):
        fe, _c = build_frontend()
        spec = TrafficSpec(n_clients=8, duration_s=0.1, zipf_s=1.5,
                           population=32, seed=3)
        rep = TrafficDriver(fe, spec).run()
        assert rep.hit_rate > 0.5
        assert rep.cache_violations == 0

    def test_churn_replaces_clients(self):
        fe, _c = build_frontend()
        spec = TrafficSpec(n_clients=4, duration_s=0.1, churn_rate=100.0,
                           seed=4)
        drv = TrafficDriver(fe, spec)
        rep = drv.run()
        assert drv._next_client_id > spec.n_clients  # replacements happened
        assert rep.completed == rep.admitted

    def test_churn_does_not_double_count_orphans(self):
        # A killed client's in-flight response must not land in the
        # driver's counts: everything the driver records was observed by
        # a then-live client, and the remainder is accounted as orphaned.
        fe, _c = build_frontend()
        spec = TrafficSpec(n_clients=8, duration_s=0.1, churn_rate=400.0,
                           rate_per_client=4000.0, seed=11)
        drv = TrafficDriver(fe, spec, keep_responses=True)
        rep = drv.run()
        assert drv.n_orphaned > 0                      # churn hit in-flight
        assert drv.n_responses + drv.n_orphaned == rep.submitted
        assert len(drv.responses) == drv.n_responses   # no orphan leaked in

    def test_churn_with_coalescing_same_seed_deterministic(self):
        # Churn + tight batching windows (heavy coalescing) must still
        # replay identically for a fixed (spec, seed, system) triple.
        def run():
            # Wide windows: requests sit in batching long enough both to
            # coalesce heavily and to be in flight when churn strikes.
            cfg = ServeConfig(interactive_window_s=5e-4, batch_window_s=2e-3)
            fe, _c = build_frontend(cfg)
            spec = TrafficSpec(n_clients=8, duration_s=0.08,
                               churn_rate=400.0, rate_per_client=4000.0,
                               zipf_s=1.5, population=32, seed=11)
            drv = TrafficDriver(fe, spec)
            rep = drv.run()
            return (rep.submitted, rep.admitted, rep.completed,
                    rep.coalesced, rep.cache_hits, rep.qps,
                    drv.n_responses, drv.n_rejected, drv.n_orphaned,
                    drv._next_client_id)
        first, second = run(), run()
        assert first == second
        assert first[8] > 0  # the run actually exercised orphaned responses


class TestClosedLoop:
    def test_closed_loop_completes(self):
        fe, _c = build_frontend()
        spec = TrafficSpec(n_clients=4, duration_s=0.02, arrival="closed",
                           think_time_s=1e-4, seed=5)
        rep = TrafficDriver(fe, spec).run()
        assert rep.completed > 0
        assert rep.completed == rep.admitted

    def test_closed_loop_backs_off_on_rejection(self):
        # One-slot queue + zero think time: clients must survive sheds.
        fe, _c = build_frontend(ServeConfig(queue_limit=1))
        spec = TrafficSpec(n_clients=8, duration_s=0.01, arrival="closed",
                           seed=6)
        drv = TrafficDriver(fe, spec, keep_responses=True)
        rep = drv.run()
        assert rep.rejected > 0
        assert rep.completed > 0
        assert drv.n_rejected == rep.rejected

    def test_cache_speedup_on_repeated_queries(self):
        def run(cache):
            cfg = ServeConfig(cache=cache, interactive_window_s=5e-6,
                              batch_window_s=5e-6)
            fe, _c = build_frontend(cfg)
            spec = TrafficSpec(n_clients=8, duration_s=0.05,
                               arrival="closed", zipf_s=1.5, population=32,
                               nodewise_frac=0.8, seed=7)
            return TrafficDriver(fe, spec).run()
        off, on = run(False), run(True)
        assert on.qps > 2.0 * off.qps
