"""Unit tests for the update-epoch result cache (docs/SERVING.md)."""

import pytest

from repro.obs import Observability
from repro.queries.interface import QueryInterface, QueryResult
from repro.serve import CachedQueries, EpochCache
from tests.conftest import make_system


def result(v):
    return QueryResult(v, 1e-5, 1e-6, coverage=1.0, degraded=False)


class TestEpochCache:
    def test_miss_then_hit(self):
        c = EpochCache(capacity=4)
        assert c.get(("k",), (1,)) is None
        c.put(("k",), (1,), result(7))
        assert c.get(("k",), (1,)).value == 7
        assert c.hits == 1 and c.misses == 1

    def test_token_mismatch_invalidates(self):
        c = EpochCache(capacity=4)
        c.put(("k",), (1,), result(7))
        assert c.get(("k",), (2,)) is None
        assert c.invalidations == 1
        assert len(c) == 0  # the stale entry is dropped, not kept

    def test_lru_eviction(self):
        c = EpochCache(capacity=2)
        c.put(("a",), (1,), result(1))
        c.put(("b",), (1,), result(2))
        assert c.get(("a",), (1,)) is not None   # refresh "a"
        c.put(("c",), (1,), result(3))           # evicts "b"
        assert c.evictions == 1
        assert c.get(("b",), (1,)) is None
        assert c.get(("a",), (1,)) is not None
        assert c.get(("c",), (1,)) is not None

    def test_size_gauge_tracks(self):
        obs = Observability()
        c = EpochCache(capacity=4, obs=obs)
        c.put(("a",), (1,), result(1))
        c.put(("b",), (1,), result(2))
        assert obs.registry.value("serve.cache.size") == 2
        c.clear()
        assert obs.registry.value("serve.cache.size") == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EpochCache(capacity=-1)

    def test_capacity_zero_is_a_true_bypass(self):
        c = EpochCache(capacity=0)
        c.put(("k",), (1,), result(7))
        assert len(c) == 0           # nothing stored
        assert c.evictions == 0      # and no insert-then-evict accounting
        assert c.get(("k",), (1,)) is None
        assert c.misses == 1 and c.hits == 0 and c.invalidations == 0

    def test_capacity_zero_size_gauge_stays_zero(self):
        obs = Observability()
        c = EpochCache(capacity=0, obs=obs)
        for i in range(5):
            c.put(("k", i), (1,), result(i))
        assert obs.registry.value("serve.cache.size") == 0
        assert obs.registry.value("serve.cache.evictions") == 0


class TestCachedQueries:
    def setup_method(self):
        self.cluster, self.ents, self.concord = make_system(seed=11)
        self.queries = QueryInterface(self.cluster, self.concord.tracing)
        self.cq = CachedQueries(self.queries)
        self.engine = self.concord.tracing
        h = next(iter(self.engine.shards[0].hashes()))
        self.h = int(h)
        self.eids = sorted(self.cluster.all_entity_ids())

    def test_repeat_nodewise_hits_and_matches(self):
        r1, hit1 = self.cq.num_copies(self.h, 1)
        r2, hit2 = self.cq.num_copies(self.h, 1)
        assert (hit1, hit2) == (False, True)
        assert r1 == r2 == self.queries.num_copies(self.h, 1)

    def test_issuing_node_is_part_of_the_key(self):
        self.cq.num_copies(self.h, 0)
        _r, hit = self.cq.num_copies(self.h, 1)
        assert not hit  # different issuing node => different latency

    def test_update_to_home_shard_invalidates(self):
        self.cq.num_copies(self.h, 0)
        self.engine.route_updates(0, inserts=[(self.h, 5)], removes=[])
        r, hit = self.cq.num_copies(self.h, 0)
        assert not hit
        assert r == self.queries.num_copies(self.h, 0)

    def test_update_to_other_shard_keeps_entry_hot(self):
        home = self.engine.home_node(self.h)
        self.cq.num_copies(self.h, 0)
        # Manufacture a hash homed elsewhere and insert it.
        other = next(x for x in range(1, 10_000)
                     if self.engine.home_node(x) != home)
        self.engine.route_updates(0, inserts=[(other, 5)], removes=[])
        _r, hit = self.cq.num_copies(self.h, 0)
        assert hit  # precise per-shard invalidation, not global

    def test_collective_hits_and_any_update_invalidates(self):
        r1, hit1 = self.cq.sharing(self.eids)
        r2, hit2 = self.cq.sharing(self.eids)
        assert (hit1, hit2) == (False, True)
        assert r1 == r2
        self.engine.route_updates(0, inserts=[(12345, 2)], removes=[])
        _r3, hit3 = self.cq.sharing(self.eids)
        assert not hit3  # collective answers cover every shard

    def test_failover_invalidates_nodewise(self):
        self.cq.num_copies(self.h, 0)
        self.concord.fail_node(self.engine.home_node(self.h))
        r, hit = self.cq.num_copies(self.h, 0)
        assert not hit
        assert r == self.queries.num_copies(self.h, 0)

    def test_generic_dispatch_all_ops(self):
        for op, args in [("num_copies", (self.h,)),
                         ("entities", (self.h,)),
                         ("sharing", (tuple(self.eids),)),
                         ("intra_sharing", (tuple(self.eids),)),
                         ("inter_sharing", (tuple(self.eids),)),
                         ("degree_of_sharing", (tuple(self.eids),)),
                         ("num_shared_content", (tuple(self.eids), 2)),
                         ("shared_content", (tuple(self.eids), 2))]:
            r1, _ = self.cq.query(op, args, issuing_node=1)
            r2, hit = self.cq.query(op, args, issuing_node=1)
            assert hit, op
            assert r1 == r2, op
        with pytest.raises(ValueError):
            self.cq.query("nope", (1,))

    def test_verify_mode_counts_no_violations_when_honest(self):
        cq = CachedQueries(self.queries, verify=True)
        for _ in range(3):
            cq.num_copies(self.h, 0)
            cq.sharing(self.eids)
        assert cq.violations == []
        assert cq.obs.registry.value("serve.cache.violations") == 0

    def test_verify_mode_flags_forged_entry(self):
        cq = CachedQueries(self.queries, verify=True)
        r, _ = cq.num_copies(self.h, 0)
        key = ("num_copies", self.h, 0)
        token = cq.nodewise_token(self.h)
        forged = QueryResult(r.value + 99, r.latency, r.compute_time,
                             r.coverage, r.degraded)
        cq.cache.put(key, token, forged)
        fresh, hit = cq.num_copies(self.h, 0)
        assert not hit                      # served the fresh answer
        assert fresh.value == r.value       # self-healed
        assert len(cq.violations) == 1
        assert cq.obs.registry.value("serve.cache.violations") == 1


class TestCapacityZeroBypass:
    def setup_method(self):
        self.cluster, self.ents, self.concord = make_system(seed=11)
        self.queries = QueryInterface(self.cluster, self.concord.tracing)
        self.cq = CachedQueries(self.queries, capacity=0)
        h = next(iter(self.concord.tracing.shards[0].hashes()))
        self.h = int(h)
        self.eids = sorted(self.cluster.all_entity_ids())

    def test_never_hits_but_answers_match_uncached(self):
        for _ in range(2):
            r, hit = self.cq.num_copies(self.h, 0)
            assert not hit
            assert r == self.queries.num_copies(self.h, 0)
            r, hit = self.cq.sharing(self.eids)
            assert not hit
            assert r == self.queries.sharing(self.eids)
        assert len(self.cq.cache) == 0
        assert self.cq.cache.evictions == 0

    def test_serve_config_accepts_zero(self):
        from repro.serve.config import ServeConfig
        assert ServeConfig(cache_capacity=0).cache_capacity == 0
        with pytest.raises(ValueError):
            ServeConfig(cache_capacity=-1)


class TestCacheIsolation:
    def test_two_instances_do_not_share_entries(self):
        _cl, _e, concord = make_system(seed=2)
        q = QueryInterface(_cl, concord.tracing)
        h = int(next(iter(concord.tracing.shards[0].hashes())))
        a, b = CachedQueries(q), CachedQueries(q)
        a.num_copies(h, 0)
        _r, hit = b.num_copies(h, 0)
        assert not hit

    def test_absent_hash_is_cacheable(self):
        _cl, _e, concord = make_system(seed=2)
        q = QueryInterface(_cl, concord.tracing)
        absent = 0xDEAD_BEEF
        cq = CachedQueries(q)
        r1, _ = cq.num_copies(absent, 0)
        r2, hit = cq.num_copies(absent, 0)
        assert hit and r1.value == 0 and r1 == r2
