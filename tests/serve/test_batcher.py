"""Batched node-wise answers must be byte-identical to individual ones."""

import pytest

from repro.queries.interface import QueryInterface
from repro.serve import bulk_answers
from tests.conftest import make_system


@pytest.fixture
def system():
    cluster, ents, concord = make_system(seed=13)
    return cluster, concord, QueryInterface(cluster, concord.tracing)


def sample_hashes(concord, n=12):
    out = []
    for shard in concord.tracing.shards:
        for h in shard.hashes():
            out.append(int(h))
            if len(out) >= n:
                return out
    return out


class TestBulkAnswers:
    @pytest.mark.parametrize("op", ["num_copies", "entities"])
    def test_matches_individual_queries(self, system, op):
        cluster, concord, q = system
        pairs = [(h, i % cluster.n_nodes)
                 for i, h in enumerate(sample_hashes(concord))]
        batched = bulk_answers(concord.tracing, cluster.cost, op, pairs)
        for (h, node), got in zip(pairs, batched):
            assert got == getattr(q, op)(h, node), (op, h, node)

    def test_duplicate_hashes_fan_out(self, system):
        cluster, concord, q = system
        h = sample_hashes(concord, 1)[0]
        pairs = [(h, 0), (h, 1), (h, 0)]
        batched = bulk_answers(concord.tracing, cluster.cost, "num_copies",
                               pairs)
        assert batched[0] == batched[2] == q.num_copies(h, 0)
        assert batched[1] == q.num_copies(h, 1)
        # Remote and local issuers see different modelled latency.
        home = concord.tracing.home_node(h)
        lats = {node: r.latency for (_h, node), r in zip(pairs, batched)}
        assert (lats[home] < lats[1 - home] if home in (0, 1)
                else lats[0] == lats[1])

    def test_absent_hashes(self, system):
        cluster, concord, q = system
        pairs = [(0xFEED, 2), (0xF00D, 3)]
        for op in ("num_copies", "entities"):
            batched = bulk_answers(concord.tracing, cluster.cost, op, pairs)
            for (h, node), got in zip(pairs, batched):
                assert got == getattr(q, op)(h, node)

    def test_matches_after_failover(self, system):
        cluster, concord, q = system
        hashes = sample_hashes(concord)
        concord.fail_node(2)
        pairs = [(h, 0) for h in hashes]
        for op in ("num_copies", "entities"):
            batched = bulk_answers(concord.tracing, cluster.cost, op, pairs)
            for (h, _n), got in zip(pairs, batched):
                assert got == getattr(q, op)(h, 0)

    def test_empty_and_bad_op(self, system):
        cluster, concord, _q = system
        assert bulk_answers(concord.tracing, cluster.cost,
                            "num_copies", []) == []
        with pytest.raises(ValueError):
            bulk_answers(concord.tracing, cluster.cost, "sharing", [(1, 0)])
