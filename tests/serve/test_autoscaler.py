"""Unit tests for the serve-signal-driven autoscaler."""

import pytest

from repro.serve import AutoscalerConfig
from repro.workloads import TrafficSpec
from tests.conftest import make_system


def make_concord(n_nodes=4, seed=17, **config_kw):
    _cluster, _ents, concord = make_system(n_nodes=n_nodes, seed=seed,
                                           **config_kw)
    return concord


class TestAutoscalerConfig:
    def test_defaults_valid(self):
        AutoscalerConfig()

    @pytest.mark.parametrize("kw", [
        {"max_nodes": -1}, {"check_interval_s": 0.0},
        {"queue_depth_high": -1.0}, {"p95_high_s": -1.0},
        {"reject_rate_high": 1.5}, {"reject_rate_high": -0.1},
        {"cooldown_s": -1.0},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            AutoscalerConfig(**kw)


class TestAutoscaler:
    def test_arm_twice_raises(self):
        concord = make_concord()
        scaler = concord.autoscaler()
        scaler.arm(deadline=1.0)
        with pytest.raises(RuntimeError):
            scaler.arm(deadline=2.0)

    def test_max_nodes_defaults_to_testbed_cap(self):
        concord = make_concord()
        assert concord.autoscaler().max_nodes == concord.cluster.cost.n_nodes
        capped = concord.autoscaler(AutoscalerConfig(max_nodes=6))
        assert capped.max_nodes == 6

    def test_calm_traffic_does_not_scale(self):
        concord = make_concord()
        spec = TrafficSpec(n_clients=2, duration_s=0.02,
                           rate_per_client=200.0, seed=1)
        concord.serve(spec, autoscale=AutoscalerConfig(
            queue_depth_high=1e9, reject_rate_high=1.0, p95_high_s=1e9))
        scaler = concord._last_autoscaler
        assert scaler.joins == []
        assert concord.cluster.n_nodes == 4

    def test_forced_overload_scales_to_cap(self):
        # queue_depth_high=0 makes any queued request an overload signal,
        # so the scaler joins a node per tick pair until max_nodes.
        concord = make_concord()
        spec = TrafficSpec(n_clients=8, duration_s=0.1,
                           rate_per_client=4000.0, seed=2)
        concord.serve(spec, autoscale=AutoscalerConfig(
            max_nodes=6, queue_depth_high=0.0))
        scaler = concord._last_autoscaler
        assert concord.cluster.n_nodes == 6
        assert len(scaler.joins) == 2
        assert [r.node for r in scaler.joins] == [4, 5]
        # Every join completed; none left dangling.
        assert concord.tracing._pending_join is None
        reg = concord.obs.registry
        assert reg.counter("ring.joins").value == 2
        assert reg.counter("ring.autoscale.scaleups").value == 2

    def test_deadline_completes_pending_join(self):
        # Even if the stream ends between begin and cutover, the scaler's
        # final tick cuts the pending join over so sim.run() terminates
        # with a consistent ring.
        concord = make_concord()
        spec = TrafficSpec(n_clients=8, duration_s=0.02,
                           rate_per_client=4000.0, seed=3)
        # p95_high_s=0: overloaded as soon as any interactive completion
        # lands, so the one mid-stream tick reliably begins a join whose
        # cutover can only happen at the deadline tick.
        concord.serve(spec, autoscale=AutoscalerConfig(
            queue_depth_high=0.0, p95_high_s=0.0, check_interval_s=0.012))
        assert concord.tracing._pending_join is None
        assert concord.cluster.n_nodes >= 5

    def test_queries_stay_correct_after_autoscale(self):
        concord = make_concord()
        hashes = [int(h) for h in concord.tracing.shards[0].hashes()][:10]
        before = {h: concord.num_copies(h).value for h in hashes}
        spec = TrafficSpec(n_clients=8, duration_s=0.05,
                           rate_per_client=4000.0, seed=4)
        rep = concord.serve(spec, autoscale=AutoscalerConfig(
            queue_depth_high=0.0))
        assert concord._last_autoscaler.joins
        assert rep.cache_violations == 0
        after = {h: concord.num_copies(h).value for h in hashes}
        assert before == after

    def test_scale_to_facade(self):
        concord = make_concord()
        reports = concord.scale_to(6)
        assert [r.node for r in reports] == [4, 5]
        assert concord.cluster.n_nodes == 6
        assert concord.scale_to(6) == []       # no-op at target
        assert concord.scale_to(3) == []       # never shrinks
