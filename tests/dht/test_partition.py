"""Unit tests for zero-hop partitioning, placement policies, and the
membership ring."""

import numpy as np
import pytest

from repro.dht.partition import (PLACEMENT_POLICIES, NoAliveNodeError,
                                 NodeRing, Partition,
                                 entries_moved_fraction)


class TestHomeNode:
    def test_in_range(self):
        p = Partition(7)
        for h in range(1000):
            assert 0 <= p.home_node(h) < 7

    def test_deterministic_and_zero_hop(self):
        """Every node computes the same home with no shared state."""
        assert Partition(5).home_node(123) == Partition(5).home_node(123)

    def test_single_node(self):
        p = Partition(1)
        assert all(p.home_node(h) == 0 for h in range(100))

    def test_bad_node_count(self):
        with pytest.raises(ValueError):
            Partition(0)

    def test_vectorized_matches_scalar(self):
        p = Partition(9)
        hs = np.random.default_rng(0).integers(0, 2**63, 500, dtype=np.uint64)
        homes = p.home_nodes(hs)
        for h, home in zip(hs.tolist(), homes.tolist()):
            assert p.home_node(int(h)) == home

    def test_balance(self):
        """Keys spread near-uniformly over nodes."""
        p = Partition(8)
        hs = np.random.default_rng(1).integers(0, 2**63, 80000, dtype=np.uint64)
        counts = np.bincount(p.home_nodes(hs), minlength=8)
        assert counts.min() > 80000 / 8 * 0.9
        assert counts.max() < 80000 / 8 * 1.1

    def test_not_identity_on_content_hash(self):
        """Routing is salted: home != hash % n in general."""
        p = Partition(16)
        mismatches = sum(p.home_node(h) != h % 16 for h in range(1000))
        assert mismatches > 800


class TestGrouping:
    def test_group_by_home_partitions_indices(self):
        p = Partition(4)
        hs = np.arange(100, dtype=np.uint64)
        groups = p.group_by_home(hs)
        all_idx = np.concatenate(list(groups.values()))
        assert sorted(all_idx.tolist()) == list(range(100))
        for home, idxs in groups.items():
            assert (p.home_nodes(hs[idxs]) == home).all()

    def test_group_empty(self):
        assert Partition(4).group_by_home(np.empty(0, dtype=np.uint64)) == {}


class TestNodeRing:
    def test_all_dead_walk_raises_typed_error(self):
        # Regression: an all-dead view used to scan the ring n full
        # passes and die with a bare RuntimeError; it must raise the
        # typed NoAliveNodeError immediately.
        ring = NodeRing(4)
        for node in range(4):
            ring.set_alive(node, False)
        with pytest.raises(NoAliveNodeError):
            ring.walk(np.arange(4, dtype=np.int64))
        with pytest.raises(NoAliveNodeError):
            ring.successor(0)

    def test_walk_skips_dead_to_successor(self):
        ring = NodeRing(4)
        ring.set_alive(1, False)
        ring.set_alive(2, False)
        homes = ring.walk(np.array([0, 1, 2, 3], dtype=np.int64))
        assert homes.tolist() == [0, 3, 3, 3]
        assert ring.successor(1) == 3

    def test_add_node_born_alive(self):
        ring = NodeRing(2)
        ring.set_alive(0, False)
        assert ring.add_node() == 2
        assert ring.n_nodes == 3
        assert ring.is_alive(2)
        assert not ring.is_alive(0)

    def test_noalive_is_a_runtimeerror(self):
        # Callers that caught RuntimeError before the typed class keep
        # working.
        assert issubclass(NoAliveNodeError, RuntimeError)

    def test_partition_still_guards_last_survivor(self):
        p = Partition(2)
        p.set_alive(0, False)
        with pytest.raises(ValueError):
            p.set_alive(1, False)
        assert p.is_alive(1)  # the guard rolled the flag back


class TestPlacementPolicies:
    @pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
    def test_scalar_matches_vector(self, policy):
        p = Partition(9, policy=policy)
        hs = np.random.default_rng(0).integers(0, 2**63, 300, dtype=np.uint64)
        homes = p.home_nodes(hs)
        for h, home in zip(hs.tolist(), homes.tolist()):
            assert p.home_node(int(h)) == home

    @pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
    def test_balance(self, policy):
        p = Partition(8, policy=policy)
        hs = np.random.default_rng(1).integers(0, 2**63, 80000,
                                               dtype=np.uint64)
        counts = np.bincount(p.home_nodes(hs), minlength=8)
        assert counts.min() > 80000 / 8 * 0.5
        assert counts.max() < 80000 / 8 * 1.6

    def test_mod_is_default_and_byte_compatible(self):
        hs = np.random.default_rng(2).integers(0, 2**63, 1000,
                                               dtype=np.uint64)
        assert Partition(7).policy == "mod"
        assert (Partition(7).home_nodes(hs)
                == Partition(7, policy="mod").home_nodes(hs)).all()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Partition(4, policy="tea-leaves")
        with pytest.raises(ValueError):
            entries_moved_fraction("tea-leaves", 4, 5)

    @pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
    def test_grown_equals_fresh(self, policy):
        # The property live join relies on: growing in place (or via
        # grown()) is indistinguishable from constructing at the new
        # size, because per-node placement state derives from ID only.
        hs = np.random.default_rng(3).integers(0, 2**63, 2000,
                                               dtype=np.uint64)
        grown_inplace = Partition(5, policy=policy)
        assert grown_inplace.add_node() == 5
        grown_copy = Partition(5, policy=policy).grown()
        fresh = Partition(6, policy=policy)
        assert (grown_inplace.home_nodes(hs) == fresh.home_nodes(hs)).all()
        assert (grown_copy.home_nodes(hs) == fresh.home_nodes(hs)).all()

    def test_grown_carries_alive_view(self):
        p = Partition(4)
        p.set_alive(2, False)
        g = p.grown()
        assert g.n_nodes == 5
        assert not g.is_alive(2)
        assert g.is_alive(4)
        assert not p.is_alive(2)  # original untouched

    def test_minimal_remap_policies_beat_mod(self):
        # The acceptance yardstick: at n -> n+1 the remap-minimizing
        # policies move <= 2x the theoretical minimum 1/(n+1), while
        # mod-N moves ~n/(n+1) of everything.
        lo = 1 / 9
        assert entries_moved_fraction("mod", 8, 9) > 0.8
        assert lo <= entries_moved_fraction("consistent", 8, 9) <= 2 * lo
        assert lo <= entries_moved_fraction("hd", 8, 9) <= 2 * lo

    def test_entries_moved_identity(self):
        for policy in PLACEMENT_POLICIES:
            assert entries_moved_fraction(policy, 6, 6, sample=500) == 0.0
