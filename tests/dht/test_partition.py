"""Unit tests for zero-hop partitioning."""

import numpy as np
import pytest

from repro.dht.partition import Partition


class TestHomeNode:
    def test_in_range(self):
        p = Partition(7)
        for h in range(1000):
            assert 0 <= p.home_node(h) < 7

    def test_deterministic_and_zero_hop(self):
        """Every node computes the same home with no shared state."""
        assert Partition(5).home_node(123) == Partition(5).home_node(123)

    def test_single_node(self):
        p = Partition(1)
        assert all(p.home_node(h) == 0 for h in range(100))

    def test_bad_node_count(self):
        with pytest.raises(ValueError):
            Partition(0)

    def test_vectorized_matches_scalar(self):
        p = Partition(9)
        hs = np.random.default_rng(0).integers(0, 2**63, 500, dtype=np.uint64)
        homes = p.home_nodes(hs)
        for h, home in zip(hs.tolist(), homes.tolist()):
            assert p.home_node(int(h)) == home

    def test_balance(self):
        """Keys spread near-uniformly over nodes."""
        p = Partition(8)
        hs = np.random.default_rng(1).integers(0, 2**63, 80000, dtype=np.uint64)
        counts = np.bincount(p.home_nodes(hs), minlength=8)
        assert counts.min() > 80000 / 8 * 0.9
        assert counts.max() < 80000 / 8 * 1.1

    def test_not_identity_on_content_hash(self):
        """Routing is salted: home != hash % n in general."""
        p = Partition(16)
        mismatches = sum(p.home_node(h) != h % 16 for h in range(1000))
        assert mismatches > 800


class TestGrouping:
    def test_group_by_home_partitions_indices(self):
        p = Partition(4)
        hs = np.arange(100, dtype=np.uint64)
        groups = p.group_by_home(hs)
        all_idx = np.concatenate(list(groups.values()))
        assert sorted(all_idx.tolist()) == list(range(100))
        for home, idxs in groups.items():
            assert (p.home_nodes(hs[idxs]) == home).all()

    def test_group_empty(self):
        assert Partition(4).group_by_home(np.empty(0, dtype=np.uint64)) == {}
