"""Unit tests for elastic membership: live join with incremental handoff."""

import numpy as np
import pytest

from repro.dht.engine import ContentTracingEngine
from repro.sim.cluster import Cluster


def make(n_nodes=4, placement="mod", cost="new-cluster", **kw):
    c = Cluster(n_nodes, cost=cost)
    kw.setdefault("use_network", False)
    return c, ContentTracingEngine(c, placement=placement, **kw)


def load(eng, n=200, node=0):
    eng.route_updates(node, inserts=[(h, h % 3) for h in range(1, n + 1)],
                      removes=[])


def shard_states(eng):
    mask = (1 << 80) - 1
    out = []
    for shard in eng.shards:
        hs, lo, wide = shard.se_scan(mask)
        out.append((hs.tolist(), lo.tolist(), wide,
                    shard.n_hashes, shard.n_copies))
    return out


def assert_all_homed(eng):
    for i, shard in enumerate(eng.shards):
        hashes, _lo, _wide = shard.items_arrays()
        if len(hashes):
            assert (eng.partition.home_nodes(hashes) == i).all()


class TestAtomicJoin:
    @pytest.mark.parametrize("placement", ["mod", "consistent", "hd"])
    def test_rows_rehome_and_nothing_lost(self, placement):
        c, eng = make(placement=placement)
        load(eng)
        before = eng.total_hashes
        rep = eng.add_node()
        assert rep.node == 4
        assert rep.policy == placement
        assert eng.partition.n_nodes == 5
        assert eng.cluster.n_nodes == 5
        assert eng.total_hashes == before
        assert_all_homed(eng)

    def test_minimal_policies_move_less_than_mod(self):
        def moved(placement):
            c, eng = make(8, placement=placement, cost="old-cluster")
            load(eng, n=2000)
            return eng.add_node().moved_fraction
        assert moved("hd") < 0.25 < 0.8 < moved("mod")

    def test_report_accounting(self):
        c, eng = make()
        load(eng, n=300)
        rep = eng.add_node()
        assert rep.entries_total == 300
        assert 0 <= rep.entries_moved <= rep.entries_total
        # An atomic join has no divergence window: the pre-copy already
        # holds exactly the new node's range.
        assert rep.delta_inserts == 0
        assert rep.delta_removes == 0
        assert rep.precopied == eng.shards[rep.node].n_hashes

    def test_grows_storage_and_epochs(self):
        c, eng = make()
        load(eng)
        epochs_before = eng.epoch_vector()
        eng.add_node()
        assert len(eng.shards) == 5
        assert len(eng.storage.shards) == 5
        assert len(eng.epoch_vector()) == 5
        # Cutover bumps every epoch so the serve cache invalidates.
        assert (eng.epoch_vector()[:4] > epochs_before).all()

    def test_metrics_counters(self):
        c, eng = make()
        load(eng)
        rep = eng.add_node()
        reg = eng.obs.registry
        assert reg.counter("ring.joins").value == 1
        assert reg.counter("ring.entries_moved").value == rep.entries_moved
        assert reg.gauge("ring.n_nodes").value == 5


class TestIncrementalJoin:
    def test_live_writes_between_phases_reconcile(self):
        c, eng = make()
        load(eng, n=200)
        node = eng.begin_join()
        # The old ring still routes while the join is pending.
        assert eng.partition.n_nodes == 4
        eng.route_updates(0, inserts=[(h, 1) for h in range(500, 560)],
                          removes=[(h, h % 3) for h in range(1, 20)])
        rep = eng.complete_join()
        assert rep.node == node
        assert eng.total_hashes == 200 - 19 + 60
        assert_all_homed(eng)
        # Divergence since begin_join moved incrementally, not wholesale.
        assert rep.delta_inserts + rep.delta_removes > 0
        assert rep.delta_inserts <= 60
        assert rep.delta_removes <= 19

    def test_double_begin_raises(self):
        c, eng = make()
        eng.begin_join()
        with pytest.raises(RuntimeError):
            eng.begin_join()

    def test_complete_without_begin_raises(self):
        c, eng = make()
        with pytest.raises(RuntimeError):
            eng.complete_join()

    def test_failure_during_pending_join(self):
        c, eng = make()
        load(eng, n=200)
        eng.begin_join()
        c.network.set_node_up(2, False)
        eng.refresh_failed()
        rep = eng.complete_join()
        assert not eng.partition.is_alive(2)
        assert_all_homed(eng)
        assert rep.node == 4

    def test_queries_consistent_across_join(self):
        c, eng = make()
        load(eng, n=100)
        before = {h: eng.lookup_copies(h) for h in range(1, 101)}
        eng.begin_join()
        eng.complete_join()
        after = {h: eng.lookup_copies(h) for h in range(1, 101)}
        assert before == after

    def test_join_equals_fresh_engine_at_final_size(self):
        # The zero-hop map after a join is the same map a fresh engine
        # at the grown size computes — no hidden membership state.
        c1, e1 = make(4)
        load(e1, n=150)
        e1.add_node()
        c2, e2 = make(5)
        load(e2, n=150)
        assert shard_states(e1) == shard_states(e2)

    def test_repeated_joins(self):
        c, eng = make(2)
        load(eng, n=100)
        for expect in (3, 4, 5):
            eng.add_node()
            assert eng.partition.n_nodes == expect
            assert eng.total_hashes == 100
            assert_all_homed(eng)
        assert eng.coverage == 1.0
