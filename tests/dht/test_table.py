"""Unit tests for the local DHT shard."""


from repro.dht.table import LocalDHT


class TestInsertRemove:
    def test_insert_lookup(self):
        t = LocalDHT()
        t.insert(100, 2)
        assert 100 in t
        assert t.entity_ids(100) == [2]
        assert t.num_entities(100) == 1
        assert t.num_copies(100) == 1

    def test_multiple_entities(self):
        t = LocalDHT()
        t.insert(5, 0)
        t.insert(5, 3)
        assert t.entity_ids(5) == [0, 3]
        assert t.entities_mask(5) == 0b1001

    def test_multicopy_refcount(self):
        t = LocalDHT()
        t.insert(5, 1)
        t.insert(5, 1)
        t.insert(5, 1)
        assert t.num_entities(5) == 1
        assert t.num_copies(5) == 3
        assert t.copies_of(5, 1) == 3
        assert t.n_multicopy_entries == 1

    def test_remove_peels_refcounts_first(self):
        t = LocalDHT()
        t.insert(5, 1)
        t.insert(5, 1)
        assert t.remove(5, 1)
        assert t.num_copies(5) == 1
        assert 5 in t
        assert t.remove(5, 1)
        assert 5 not in t
        assert t.n_multicopy_entries == 0

    def test_remove_unknown_returns_false(self):
        t = LocalDHT()
        assert not t.remove(1, 1)
        t.insert(1, 2)
        assert not t.remove(1, 3)

    def test_remove_last_entity_deletes_entry(self):
        t = LocalDHT()
        t.insert(9, 0)
        t.remove(9, 0)
        assert t.n_hashes == 0
        assert t.entities_mask(9) == 0

    def test_total_copies_invariant(self):
        t = LocalDHT()
        ops = [(5, 0), (5, 0), (6, 1), (5, 2)]
        for h, e in ops:
            t.insert(h, e)
        assert t.n_copies == 4
        t.remove(5, 0)
        assert t.n_copies == 3

    def test_large_entity_ids(self):
        t = LocalDHT()
        t.insert(7, 500)
        assert t.entity_ids(7) == [500]
        assert t.entities_mask(7) == 1 << 500


class TestRemoveEntity:
    def test_purges_everywhere(self):
        t = LocalDHT()
        t.insert(1, 0)
        t.insert(1, 1)
        t.insert(2, 1)
        t.insert(2, 1)  # refcounted
        removed = t.remove_entity(1)
        assert removed == 3
        assert t.entity_ids(1) == [0]
        assert 2 not in t
        assert t.n_copies == 1

    def test_noop_for_unknown_entity(self):
        t = LocalDHT()
        t.insert(1, 0)
        assert t.remove_entity(9) == 0
        assert t.n_copies == 1


class TestIteration:
    def test_items(self):
        t = LocalDHT()
        t.insert(1, 0)
        t.insert(2, 1)
        assert dict(t.items()) == {1: 0b1, 2: 0b10}
        assert sorted(t.hashes()) == [1, 2]

    def test_extra_copies_accessor(self):
        t = LocalDHT()
        t.insert(1, 0)
        assert t.extra_copies(1) == {}
        t.insert(1, 0)
        assert t.extra_copies(1) == {0: 1}

    def test_clear(self):
        t = LocalDHT()
        t.insert(1, 0)
        t.insert(1, 0)
        t.clear()
        assert t.n_hashes == 0 and t.n_copies == 0
        assert t.n_multicopy_entries == 0


class TestReferenceSemantics:
    def test_random_ops_match_multiset_model(self):
        """The shard must behave exactly like a (hash, entity) multiset."""
        import collections
        import random

        rnd = random.Random(7)
        t = LocalDHT()
        model: collections.Counter = collections.Counter()
        for _ in range(2000):
            h = rnd.randrange(20)
            e = rnd.randrange(6)
            if rnd.random() < 0.6:
                t.insert(h, e)
                model[(h, e)] += 1
            else:
                ok = t.remove(h, e)
                assert ok == (model[(h, e)] > 0)
                if ok:
                    model[(h, e)] -= 1
        for h in range(20):
            want_entities = sorted({e for (hh, e), c in model.items()
                                    if hh == h and c > 0})
            want_copies = sum(c for (hh, _e), c in model.items() if hh == h)
            assert t.entity_ids(h) == want_entities
            assert t.num_copies(h) == want_copies
        assert t.n_copies == sum(model.values())
