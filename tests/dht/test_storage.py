"""Backend-conformance suite for the pluggable ShardStorage backends.

Every backend in :data:`repro.dht.storage.BACKENDS` must satisfy the
same contract (docs/STORAGE.md): commit/load round-trips the complete
columnar state (packed columns, wide spill, extra-copy overflow,
counters, epoch), ``clear`` is a logical wipe, ``crash`` loses only RAM,
and a LocalDHT driven through any backend is byte-identical to one on
any other.
"""

import numpy as np
import pytest

from repro.dht.storage import (
    BACKENDS,
    MemoryStorage,
    MmapSegmentStorage,
    SqliteWalStorage,
    StorageConfig,
    StorageState,
    open_storage,
)
from repro.dht.table import LocalDHT

PERSISTENT = tuple(b for b in BACKENDS if b != "memory")


def make_storage(backend, root, node=0):
    if backend == "memory":
        return MemoryStorage(node)
    if backend == "mmap":
        return MmapSegmentStorage(root, node)
    return SqliteWalStorage(root, node)


def sample_state(epoch=7):
    return StorageState(
        ph=np.array([3, 9, 20, 77], dtype=np.uint64),
        pm=np.array([1, 3, 1 << 63, 5], dtype=np.uint64),
        wide={9: 0b101},                  # holders at entities 64 and 66
        extra={20: {0: 2}},               # entity 0 holds 3 copies of 20
        n_hashes=4, n_copies=11, epoch=epoch)


def assert_states_equal(a: StorageState, b: StorageState) -> None:
    assert np.array_equal(a.ph, b.ph)
    assert np.array_equal(a.pm, b.pm)
    assert a.wide == b.wide
    assert a.extra == b.extra
    assert (a.n_hashes, a.n_copies, a.epoch) == \
        (b.n_hashes, b.n_copies, b.epoch)


def shard_state(t: LocalDHT):
    """Byte-comparable state (the props-suite comparator)."""
    hs, lo, wide = t.se_scan((1 << 80) - 1)
    return (hs.tolist(), lo.tolist(), wide, dict(t.extra_items()),
            t.n_hashes, t.n_copies)


class TestStorageConfig:
    def test_defaults(self, monkeypatch):
        # The built-in defaults, with the env overrides out of the way
        # (tier-2 CI runs this suite under CONCORD_STORAGE=sqlite).
        monkeypatch.delenv("CONCORD_STORAGE", raising=False)
        monkeypatch.delenv("CONCORD_STORAGE_DIR", raising=False)
        cfg = StorageConfig()
        assert cfg.backend == "memory"
        assert cfg.root is None
        assert cfg.persistent is False

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            StorageConfig(backend="bogus")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("CONCORD_STORAGE", "sqlite")
        assert StorageConfig().backend == "sqlite"
        monkeypatch.setenv("CONCORD_STORAGE", "nonsense")
        assert StorageConfig().backend == "memory"
        monkeypatch.setenv("CONCORD_STORAGE_DIR", "/tmp/somewhere")
        assert StorageConfig().root == "/tmp/somewhere"

    def test_persistent_property(self):
        for backend in PERSISTENT:
            assert StorageConfig(backend=backend).persistent is True


class TestBackendContract:
    """The raw ShardStorage contract, per backend."""

    @pytest.mark.parametrize("backend", PERSISTENT)
    def test_commit_load_roundtrip_across_instances(self, backend, tmp_path):
        st = make_storage(backend, tmp_path)
        st.commit(sample_state())
        st.close()
        reopened = make_storage(backend, tmp_path)
        loaded = reopened.load()
        assert loaded is not None
        assert_states_equal(loaded, sample_state())
        reopened.close()

    @pytest.mark.parametrize("backend", PERSISTENT)
    def test_last_commit_wins(self, backend, tmp_path):
        st = make_storage(backend, tmp_path)
        st.commit(sample_state(epoch=1))
        newer = sample_state(epoch=2)
        newer.ph = np.array([42], dtype=np.uint64)
        newer.pm = np.array([1], dtype=np.uint64)
        newer.wide = {}
        newer.extra = {}
        newer.n_hashes, newer.n_copies = 1, 1
        st.commit(newer)
        st.close()
        loaded = make_storage(backend, tmp_path).load()
        assert loaded.ph.tolist() == [42] and loaded.epoch == 2

    @pytest.mark.parametrize("backend", PERSISTENT)
    def test_clear_is_a_wipe(self, backend, tmp_path):
        st = make_storage(backend, tmp_path)
        st.commit(sample_state())
        st.clear()
        st.close()
        assert make_storage(backend, tmp_path).load() is None

    @pytest.mark.parametrize("backend", PERSISTENT)
    def test_empty_commit_roundtrips(self, backend, tmp_path):
        st = make_storage(backend, tmp_path)
        empty = StorageState(ph=np.empty(0, dtype=np.uint64),
                             pm=np.empty(0, dtype=np.uint64),
                             wide={}, extra={}, n_hashes=0, n_copies=0,
                             epoch=3)
        st.commit(empty)
        st.close()
        loaded = make_storage(backend, tmp_path).load()
        assert loaded is not None
        assert len(loaded.ph) == 0 and loaded.epoch == 3

    def test_memory_backend_has_no_durable_form(self):
        st = MemoryStorage(0)
        assert st.persistent is False
        state = sample_state()
        ph, pm = st.commit(state)
        assert ph is state.ph and pm is state.pm  # identity, zero cost
        assert st.load() is None                  # restarts start cold
        st.clear()
        st.close()

    def test_mmap_segment_path_is_the_export_format(self, tmp_path):
        st = MmapSegmentStorage(tmp_path, 0)
        assert st.segment_path() is None
        state = sample_state()
        st.commit(state)
        path = st.segment_path()
        assert path is not None
        raw = np.fromfile(path, dtype=np.uint64)
        n = len(state.ph)
        assert raw[:n].tolist() == state.ph.tolist()    # [hashes | masks]
        assert raw[n:].tolist() == state.pm.tolist()

    def test_mmap_commit_is_atomic_per_generation(self, tmp_path):
        st = MmapSegmentStorage(tmp_path, 0)
        st.commit(sample_state(epoch=1))
        first = st.segment_path()
        st.commit(sample_state(epoch=2))
        second = st.segment_path()
        assert first != second          # fresh generation, atomic rename
        import os
        assert not os.path.exists(first)  # old generation reaped

    def test_sqlite_shards_share_one_database(self, tmp_path):
        a = SqliteWalStorage(tmp_path, 0)
        b = SqliteWalStorage(tmp_path, 1)
        assert a._db is b._db
        a.commit(sample_state(epoch=1))
        sb = sample_state(epoch=5)
        b.commit(sb)
        assert a.load().epoch == 1       # rows are independent
        assert b.load().epoch == 5
        a.close()
        b.load()                         # refcount keeps the db open
        b.close()


class TestLocalDHTOnBackends:
    """Table-level semantics: flush/crash/recover/clear, per backend."""

    def populate(self, t: LocalDHT) -> None:
        rng = np.random.default_rng(11)
        hashes = rng.integers(1, 1 << 48, 300, dtype=np.uint64)
        t.bulk_insert(hashes, rng.integers(0, 4, 300))
        t.insert(123456, 70)             # wide spill (entity >= 64)
        t.insert(int(hashes[0]), int(rng.integers(0, 4)))  # extra copy

    @pytest.mark.parametrize("backend", PERSISTENT)
    def test_crash_then_recover_restores_flushed_state(self, backend,
                                                       tmp_path):
        cfg = StorageConfig(backend=backend, root=str(tmp_path))
        store = open_storage(cfg, 1)
        t = LocalDHT(0, storage=store.shards[0])
        self.populate(t)
        t.epoch = 9
        t.flush()
        want = shard_state(t)
        t.crash()
        assert t.n_hashes == 0           # RAM gone
        assert t.recover() is True
        assert shard_state(t) == want    # storage kept the last commit
        assert t.epoch == 9
        store.close()

    @pytest.mark.parametrize("backend", PERSISTENT)
    def test_unflushed_overlay_is_lost_on_crash(self, backend, tmp_path):
        cfg = StorageConfig(backend=backend, root=str(tmp_path))
        store = open_storage(cfg, 1)
        t = LocalDHT(0, storage=store.shards[0])
        self.populate(t)
        t.flush()
        want = shard_state(t)
        t.insert(999_999, 2)             # point update: overlay only
        t.crash()
        t.recover()
        assert shard_state(t) == want    # the overlay update is gone
        store.close()

    @pytest.mark.parametrize("backend", PERSISTENT)
    def test_clear_wipes_storage_too(self, backend, tmp_path):
        cfg = StorageConfig(backend=backend, root=str(tmp_path))
        store = open_storage(cfg, 1)
        t = LocalDHT(0, storage=store.shards[0])
        self.populate(t)
        t.flush()
        t.clear()
        assert t.recover() is False      # nothing committed anymore
        assert t.n_hashes == 0
        store.close()

    def test_memory_backend_cannot_recover(self):
        store = open_storage(StorageConfig(backend="memory"), 1)
        t = LocalDHT(0, storage=store.shards[0])
        self.populate(t)
        t.flush()
        t.crash()
        assert t.recover() is False
        store.close()

    def test_fresh_table_on_populated_root_recovers_at_init(self, tmp_path):
        cfg = StorageConfig(backend="sqlite", root=str(tmp_path))
        store = open_storage(cfg, 1)
        t = LocalDHT(0, storage=store.shards[0])
        self.populate(t)
        t.flush()
        want = shard_state(t)
        store.close()
        store2 = open_storage(cfg, 1)
        t2 = LocalDHT(0, storage=store2.shards[0])
        assert t2.recovered is True      # warm restart: loaded at init
        assert shard_state(t2) == want
        store2.close()

    def test_same_ops_identical_across_all_backends(self, tmp_path):
        tables = []
        stores = []
        for backend in BACKENDS:
            cfg = StorageConfig(backend=backend, root=str(tmp_path / backend))
            store = open_storage(cfg, 1)
            stores.append(store)
            tables.append(LocalDHT(0, storage=store.shards[0]))
        rng = np.random.default_rng(5)
        hashes = rng.integers(1, 1 << 40, 500, dtype=np.uint64)
        eids = rng.integers(0, 8, 500)
        for t in tables:
            t.bulk_insert(hashes, eids)
            t.bulk_remove(hashes[:100], eids[:100])
            t.insert(42, 65)             # wide path
            t.flush()
        want = shard_state(tables[0])
        for t in tables[1:]:
            assert shard_state(t) == want
        for s in stores:
            s.close()

    @pytest.mark.parametrize("backend", PERSISTENT)
    def test_export_columns_shares_the_committed_segment(self, backend,
                                                         tmp_path):
        cfg = StorageConfig(backend=backend, root=str(tmp_path))
        store = open_storage(cfg, 1)
        t = LocalDHT(0, storage=store.shards[0])
        self.populate(t)
        t.flush()
        view = t.export_columns()
        if backend == "mmap":
            # Zero-copy: the export IS the storage's current segment.
            assert view.shared is True
            assert view.path == store.shards[0].segment_path()
        attached = view.attach()
        assert shard_state(attached) == shard_state(t)
        store.close()

    def test_storage_set_ephemeral_root_removed_on_close(self):
        cfg = StorageConfig(backend="mmap", root=None)
        store = open_storage(cfg, 2)
        assert store.ephemeral is True
        root = store.root
        import os
        assert os.path.isdir(root)
        store.close()
        assert not os.path.exists(root)
