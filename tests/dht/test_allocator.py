"""Unit tests for the DHT memory-footprint models (Fig 6)."""

import pytest

from repro.dht.allocator import dht_memory_bytes, malloc_model_bytes, slab_model_bytes

GB = 1024**3


class TestModels:
    def test_zero_entries_small(self):
        assert malloc_model_bytes(0) < 4096
        assert slab_model_bytes(0) < 4096

    def test_linear_growth(self):
        m1 = slab_model_bytes(1_000_000)
        m2 = slab_model_bytes(2_000_000)
        assert 1.8 < m2 / m1 < 2.2

    def test_malloc_exceeds_slab(self):
        for n in (1000, 10**6, 10**8):
            assert malloc_model_bytes(n) > slab_model_bytes(n)

    def test_malloc_slab_gap_moderate(self):
        """Fig 6: malloc costs more, but same order (roughly 1.1-1.6x)."""
        n = 4_000_000
        ratio = malloc_model_bytes(n) / slab_model_bytes(n)
        assert 1.05 < ratio < 1.8

    def test_bitmap_capacity_beyond_default_grows_entries(self):
        small = slab_model_bytes(1000, n_entities=10)
        big = slab_model_bytes(1000, n_entities=100_000)
        assert big > small

    def test_multicopy_fraction_adds(self):
        assert malloc_model_bytes(1000, multicopy_fraction=0.5) > \
            malloc_model_bytes(1000, multicopy_fraction=0.0)

    def test_dispatch(self):
        assert dht_memory_bytes(10, allocator="slab") == slab_model_bytes(10)
        assert dht_memory_bytes(10, allocator="malloc") == malloc_model_bytes(10)
        with pytest.raises(ValueError):
            dht_memory_bytes(10, allocator="jemalloc")


class TestFig6Calibration:
    def test_overhead_at_16gb_entity(self):
        """Paper: at 16 GB/entity the custom allocator's extra memory is
        ~8% of entity memory; malloc noticeably more."""
        n_entries = 16 * GB // 4096  # all-distinct worst case
        entity_bytes = 16 * GB
        slab_pct = slab_model_bytes(n_entries) / entity_bytes * 100
        malloc_pct = malloc_model_bytes(n_entries) / entity_bytes * 100
        assert 5 <= slab_pct <= 11
        assert malloc_pct > slab_pct
        assert malloc_pct <= 18

    def test_overhead_at_256gb_entity_still_bounded(self):
        """Paper: ~12.5% even at 256 GB/entity (via swap)."""
        n_entries = 256 * GB // 4096
        pct = slab_model_bytes(n_entries) / (256 * GB) * 100
        assert pct <= 14
