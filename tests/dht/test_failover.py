"""Unit tests for shard failover, rejoin, and anti-entropy repair
(docs/FAULTS.md): the tracing engine must keep routing around dead home
shards and be able to rebuild any range from the monitors' ground truth.
"""

import numpy as np
import pytest

from repro import Cluster, ConCORD, ConCORDConfig, Entity


def make_tracked(n_nodes=4, pages=64, seed=9):
    cluster = Cluster(n_nodes, seed=seed)
    rng = np.random.default_rng(seed)
    ents = [Entity.create(cluster, node,
                          rng.integers(0, 200, size=pages).astype(np.uint64))
            for node in range(n_nodes)]
    concord = ConCORD(cluster, ConCORDConfig(use_network=False))
    concord.initial_scan()
    return cluster, ents, concord


def all_hashes(ents):
    return np.unique(np.concatenate([e.content_hashes() for e in ents]))


class TestFailover:
    def test_fail_node_drops_coverage_and_reroutes(self):
        _cluster, ents, concord = make_tracked()
        eng = concord.tracing
        baseline = eng.total_hashes
        concord.fail_node(2)
        assert eng.stats.failovers == 1
        assert concord.coverage == pytest.approx(3 / 4)
        assert eng.total_hashes < baseline      # shard 2's data is gone
        # Every hash still routes to a live home (the ring successor).
        for h in all_hashes(ents).tolist():
            assert eng.home_node(int(h)) != 2
        # Hashes primarily homed on node 2 are exactly the non-intact ones.
        hs = all_hashes(ents)
        intact = eng.hashes_intact(hs)
        prim = eng.partition.primary_nodes(hs)
        assert (intact == (prim != 2)).all()

    def test_fail_node_idempotent(self):
        _cluster, _ents, concord = make_tracked()
        concord.fail_node(1)
        concord.fail_node(1)
        assert concord.tracing.stats.failovers == 1
        assert concord.coverage == pytest.approx(3 / 4)

    def test_cascading_failures_reroute_through_successors(self):
        _cluster, ents, concord = make_tracked()
        concord.fail_node(1)
        concord.fail_node(2)
        assert concord.coverage == pytest.approx(2 / 4)
        for h in all_hashes(ents).tolist():
            assert concord.tracing.home_node(int(h)) in (0, 3)

    def test_refresh_failed_detects_network_down_nodes(self):
        cluster, _ents, concord = make_tracked()
        cluster.network.set_node_up(3, False)
        assert concord.tracing.refresh_failed() == [3]
        assert concord.tracing.refresh_failed() == []   # already processed
        assert concord.coverage == pytest.approx(3 / 4)

    def test_live_shards_lazily_detects(self):
        cluster, _ents, concord = make_tracked()
        cluster.network.set_node_up(0, False)
        shards = concord.tracing.live_shards()
        assert len(shards) == 3
        assert concord.coverage == pytest.approx(3 / 4)


class TestRejoin:
    def test_restart_routes_ranges_back_but_holed(self):
        _cluster, _ents, concord = make_tracked()
        eng = concord.tracing
        concord.fail_node(2)
        concord.repair()                        # successor now holds range 2
        assert concord.coverage == 1.0
        concord.restart_node(2)
        assert eng.stats.rejoins == 1
        # Range 2 routes home again but its data died with the crash.
        assert concord.coverage == pytest.approx(3 / 4)
        assert not eng._intact[2]
        # The failover owner was purged: no stale copies answer for range 2.
        hs = all_hashes(_ents)
        prim = eng.partition.primary_nodes(hs)
        for h in hs[prim == 2].tolist():
            assert eng.lookup_mask(int(h)) == 0

    def test_restart_of_alive_node_is_noop(self):
        _cluster, _ents, concord = make_tracked()
        concord.restart_node(1)
        assert concord.tracing.stats.rejoins == 0
        assert concord.coverage == 1.0


class TestRepair:
    def test_repair_restores_exact_prefailure_state(self):
        _cluster, ents, concord = make_tracked()
        eng = concord.tracing
        before = {int(h): eng.lookup_mask(int(h))
                  for h in all_hashes(ents).tolist()}
        n_before = eng.total_hashes
        concord.fail_node(1)
        concord.restart_node(1)
        report = concord.repair()
        assert report.ranges_repaired >= 1
        assert report.nodes_scanned == 4
        assert concord.coverage == 1.0
        assert eng.total_hashes == n_before
        after = {h: eng.lookup_mask(h) for h in before}
        assert after == before

    def test_repair_noop_when_intact(self):
        _cluster, _ents, concord = make_tracked()
        report = concord.repair()
        assert report.ranges_repaired == 0
        assert report.hashes_restored == 0

    def test_full_repair_heals_arbitrary_holes(self):
        """full=True is a complete anti-entropy pass: even damage the
        intact flags never saw (e.g. lost datagrams) is rebuilt."""
        _cluster, ents, concord = make_tracked()
        eng = concord.tracing
        before = {int(h): eng.lookup_mask(int(h))
                  for h in all_hashes(ents).tolist()}
        eng.shards[0].clear()                   # silent damage
        report = concord.repair(full=True)
        assert report.ranges_repaired == 4
        assert {h: eng.lookup_mask(h) for h in before} == before

    def test_dead_entities_do_not_reappear(self):
        """Entities hosted on a dead node contribute nothing to repair:
        their memory is gone with the node."""
        cluster, ents, concord = make_tracked()
        eng = concord.tracing
        victim_hashes = set(ents[3].content_hashes().tolist())
        others = set(np.concatenate(
            [e.content_hashes() for e in ents[:3]]).tolist())
        only_victims = victim_hashes - others
        assert only_victims                    # seed gives node 3 unique pages
        concord.fail_node(3)
        concord.repair(full=True)
        assert concord.coverage == 1.0
        for h in only_victims:
            assert eng.lookup_mask(int(h)) == 0
        for h in others:
            assert eng.lookup_mask(int(h)) != 0
