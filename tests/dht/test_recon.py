"""Units for the set-reconciliation subsystem (docs/RECONCILIATION.md):
the canonical multiset diff's edge cases, range digests, the two-party
session protocol, and the engine's recon repair path end to end.
"""

import numpy as np
import pytest

from repro import Cluster, ConCORD, ConCORDConfig, Entity
from repro.recon import (DigestCache, HASH_SPACE, PairSetDigest,
                         ReconSession, canonical_pairs, pair_multiset_diff)

U64 = np.uint64
I64 = np.int64


def rows(*triples):
    """Canonical rows from (hash, entity, count) literals."""
    if not triples:
        return (np.empty(0, dtype=U64), np.empty(0, dtype=I64),
                np.empty(0, dtype=I64))
    h, e, c = zip(*triples)
    return canonical_pairs(np.array(h, dtype=U64), np.array(e, dtype=I64),
                           np.array(c, dtype=I64))


def as_set(triplet):
    h, e, c = triplet
    return {(int(a), int(b), int(k))
            for a, b, k in zip(h.tolist(), e.tolist(), c.tolist())}


class TestPairMultisetDiff:
    def test_both_empty(self):
        ins, rem = pair_multiset_diff(*rows(), *rows()[:2], want_c=rows()[2])
        assert as_set(ins) == set() and as_set(rem) == set()

    def test_empty_have_ships_all_want(self):
        wh, we, wc = rows((5, 1, 2), (9, 2, 1))
        ins, rem = pair_multiset_diff(*rows(), wh, we, want_c=wc)
        assert as_set(ins) == {(5, 1, 2), (9, 2, 1)}
        assert as_set(rem) == set()

    def test_empty_want_removes_all_have(self):
        hh, he, hc = rows((5, 1, 2), (9, 2, 1))
        ins, rem = pair_multiset_diff(hh, he, hc, *rows()[:2],
                                      want_c=rows()[2])
        assert as_set(ins) == set()
        assert as_set(rem) == {(5, 1, 2), (9, 2, 1)}

    def test_duplicate_copies_both_sides(self):
        # Same pair with different multiplicities: only the count delta
        # moves, in the right direction.
        hh, he, hc = rows((7, 3, 5))
        wh, we, wc = rows((7, 3, 2))
        ins, rem = pair_multiset_diff(hh, he, hc, wh, we, want_c=wc)
        assert as_set(ins) == set()
        assert as_set(rem) == {(7, 3, 3)}
        ins, rem = pair_multiset_diff(wh, we, wc, hh, he, want_c=hc)
        assert as_set(ins) == {(7, 3, 3)}
        assert as_set(rem) == set()

    def test_equal_multisets_no_ops(self):
        hh, he, hc = rows((1, 1, 1), (2, 2, 4), (3, 1, 2))
        ins, rem = pair_multiset_diff(hh, he, hc, hh, he, want_c=hc)
        assert as_set(ins) == set() and as_set(rem) == set()

    def test_single_row_each_side(self):
        hh, he, hc = rows((4, 1, 1))
        wh, we, wc = rows((6, 1, 1))
        ins, rem = pair_multiset_diff(hh, he, hc, wh, we, want_c=wc)
        assert as_set(ins) == {(6, 1, 1)}
        assert as_set(rem) == {(4, 1, 1)}

    def test_u64_boundary_hashes(self):
        top = HASH_SPACE - 1
        hh, he, hc = rows((0, 1, 1), (top, 2, 1))
        wh, we, wc = rows((0, 1, 1), (top, 2, 2), (top, 3, 1))
        ins, rem = pair_multiset_diff(hh, he, hc, wh, we, want_c=wc)
        assert as_set(ins) == {(top, 2, 1), (top, 3, 1)}
        assert as_set(rem) == set()

    def test_want_without_counts_is_replay_semantics(self):
        hh, he, hc = rows((5, 1, 1))
        ins, rem = pair_multiset_diff(
            hh, he, hc, np.array([5, 5], dtype=U64),
            np.array([1, 1], dtype=I64))
        assert as_set(ins) == {(5, 1, 1)}  # repetition = multiplicity
        assert as_set(rem) == set()


class TestPairSetDigest:
    def test_range_summary_partitions(self):
        rng = np.random.default_rng(3)
        h = np.sort(rng.integers(0, HASH_SPACE, 500, dtype=U64))
        d = PairSetDigest(*canonical_pairs(h, np.zeros(500, dtype=I64)))
        whole = d.range_summary(0, HASH_SPACE)
        mid = HASH_SPACE // 2
        n1, g1 = d.range_summary(0, mid)
        n2, g2 = d.range_summary(mid, HASH_SPACE)
        assert n1 + n2 == whole[0] == len(d)
        assert (g1 + g2) & (HASH_SPACE - 1) == whole[1]

    def test_single_copy_flip_changes_digest(self):
        a = PairSetDigest(*rows((10, 1, 2), (20, 2, 1)))
        b = PairSetDigest(*rows((10, 1, 3), (20, 2, 1)))
        assert a.range_summary(0, HASH_SPACE) != b.range_summary(
            0, HASH_SPACE)
        # The untouched subrange still agrees.
        assert a.range_summary(15, 30) == b.range_summary(15, 30)

    def test_boundary_rows_included(self):
        top = HASH_SPACE - 1
        d = PairSetDigest(*rows((0, 1, 1), (top, 1, 1)))
        assert d.range_summary(0, HASH_SPACE)[0] == 2
        assert d.range_summary(top, HASH_SPACE)[0] == 1

    def test_empty(self):
        d = PairSetDigest(*rows())
        assert len(d) == 0 and d.total_count == 0
        assert d.range_summary(0, HASH_SPACE) == (0, 0)

    def test_cache_epoch_invalidation(self):
        cache = DigestCache()
        built = []

        def build():
            built.append(1)
            return PairSetDigest(*rows((1, 1, 1)))

        d1 = cache.get(0, 7, build)
        d2 = cache.get(0, 7, build)
        assert d1 is d2 and len(built) == 1 and cache.hits == 1
        cache.get(0, 8, build)  # epoch bumped: rebuild
        assert len(built) == 2


class TestReconSession:
    def _converge(self, local_rows, remote_rows, **kw):
        local = PairSetDigest(*local_rows)
        remote = PairSetDigest(*remote_rows)
        report = ReconSession(local, remote, **kw).run()
        # Applying the ops to the local multiset must yield the remote.
        lh, le, lc = local_rows
        ih, ie, ic = report.ins
        rh, re_, rc = report.rem
        got = canonical_pairs(
            np.concatenate([lh, ih, rh]), np.concatenate([le, ie, re_]),
            np.concatenate([lc, ic, -rc]))
        want = canonical_pairs(*remote_rows)
        assert as_set(got) == as_set(want)
        return report

    def test_identical_sets_cost_one_round(self):
        r = rows((10, 1, 1), (500, 2, 3))
        report = self._converge(r, r)
        assert report.rounds == 1 and report.leaves_shipped == 0
        assert report.ops_applied == 0

    def test_small_divergence_converges(self):
        rng = np.random.default_rng(5)
        h = np.sort(rng.integers(0, HASH_SPACE, 400, dtype=U64))
        base = [(int(x), 1, 1) for x in h]
        local = rows(*base)
        remote = rows(*(base[:390] + [(123456789, 9, 2)]))
        report = self._converge(local, remote)
        assert report.ops_applied > 0
        assert report.rounds >= 2

    def test_empty_side_ships_immediately(self):
        # One side empty: descent cannot prune anything, so the session
        # must ship the whole subtree in the first leaf round.
        step = (HASH_SPACE - 1) // 100
        remote = rows(*((i * step, 1, 1) for i in range(100)))
        report = self._converge(rows(), remote)
        assert report.rounds == 2  # one digest round + the leaf round

    def test_branching_validation(self):
        d = PairSetDigest(*rows())
        with pytest.raises(ValueError):
            ReconSession(d, d, branching=3)
        with pytest.raises(ValueError):
            ReconSession(d, d, leaf_limit=0)

    def test_wire_bytes_scale_with_divergence(self):
        rng = np.random.default_rng(6)
        h = np.sort(rng.integers(0, HASH_SPACE, 2000, dtype=U64))
        base = [(int(x), 1, 1) for x in h]
        full = rows(*base)
        nearly = rows(*base[:1990])
        small = self._converge(nearly, full).bytes_wire
        big = self._converge(rows(*base[:1000]), full).bytes_wire
        assert small < big


class TestEngineReconRepair:
    def _system(self, seed=0):
        cluster = Cluster(4, seed=seed)
        rng = np.random.default_rng(seed)
        ents = [Entity.create(cluster, n,
                              rng.integers(0, 120, 64).astype(U64))
                for n in (0, 1)]
        concord = ConCORD(cluster, ConCORDConfig(use_network=False))
        concord.initial_scan()
        return cluster, ents, concord

    def _states(self, concord):
        mask = (1 << 80) - 1
        return [tuple(map(lambda a: a.tolist() if hasattr(a, "tolist")
                          else a, s.se_scan(mask)))
                for s in concord.tracing.shards]

    def test_recon_heals_clustered_eviction(self):
        _cluster, _ents, concord = self._system()
        want = self._states(concord)
        bound = U64(int(0.3 * 2**64))
        for shard in concord.tracing.shards:
            hs, _lo, _wide = shard.items_arrays()
            if len(hs):
                shard.retain(hs >= bound)
        concord.tracing.bump_all_epochs()
        report = concord.repair(mode="recon")
        assert report.copies_restored > 0
        assert report.bytes_wire > 0 and report.rounds > 0
        assert [n for n, _i, _r in report.node_ops]
        assert self._states(concord) == want

    def test_recon_counters_exported(self):
        _cluster, _ents, concord = self._system()
        shard = concord.tracing.shards[1]
        hs, _lo, _wide = shard.items_arrays()
        shard.retain(hs >= U64(1 << 62))
        concord.tracing.bump_all_epochs()
        concord.repair(mode="recon")
        reg = concord.obs.registry
        assert reg.value("dht.repair.bytes_wire") > 0
        assert reg.value("dht.repair.rounds") > 0
        assert "dht.repair.bytes_wire" in concord.metrics_report().render()

    def test_invalid_mode_rejected(self):
        _cluster, _ents, concord = self._system()
        with pytest.raises(ValueError):
            concord.repair(mode="bogus")
        with pytest.raises(ValueError):
            concord.warm_restart(mode="bogus")

    def test_recon_over_network_converges(self):
        cluster = Cluster(4, seed=2)
        rng = np.random.default_rng(2)
        Entity.create(cluster, 0, rng.integers(0, 99, 64).astype(U64))
        concord = ConCORD(cluster, ConCORDConfig(use_network=True))
        concord.initial_scan()
        want = self._states(concord)
        shard = concord.tracing.shards[2]
        hs, _lo, _wide = shard.items_arrays()
        if len(hs):
            shard.retain(hs >= U64(1 << 63))
        concord.tracing.bump_all_epochs()
        concord.repair(mode="recon")
        assert self._states(concord) == want
