"""Unit tests for the distributed content tracing engine."""


from repro.dht.engine import ContentTracingEngine
from repro.sim.cluster import Cluster


def make(n_nodes=4, use_network=False):
    c = Cluster(n_nodes)
    return c, ContentTracingEngine(c, use_network=use_network)


class TestDirectApply:
    def test_insert_routes_to_home_shard(self):
        c, eng = make()
        eng.route_updates(0, inserts=[(123, 0)], removes=[])
        home = eng.home_node(123)
        assert eng.shards[home].entity_ids(123) == [0]
        for i, s in enumerate(eng.shards):
            if i != home:
                assert 123 not in s

    def test_lookup_helpers(self):
        c, eng = make()
        eng.route_updates(0, inserts=[(9, 1), (9, 2), (9, 2)], removes=[])
        assert eng.lookup_mask(9) == 0b110
        assert eng.lookup_copies(9) == 3

    def test_remove(self):
        c, eng = make()
        eng.route_updates(0, inserts=[(9, 1)], removes=[])
        eng.route_updates(0, inserts=[], removes=[(9, 1)])
        assert eng.lookup_mask(9) == 0
        assert eng.total_hashes == 0

    def test_totals(self):
        c, eng = make()
        eng.route_updates(0, inserts=[(h, 0) for h in range(100)], removes=[])
        assert eng.total_hashes == 100
        assert eng.total_copies == 100
        assert sum(eng.shard_sizes()) == 100

    def test_attaches_shards_to_nodes(self):
        c, eng = make()
        for node, shard in zip(c.nodes, eng.shards):
            assert node.dht is shard

    def test_clear(self):
        c, eng = make()
        eng.route_updates(0, inserts=[(1, 0)], removes=[])
        eng.clear()
        assert eng.total_hashes == 0


class TestNetworkedApply:
    def test_updates_travel_and_apply(self):
        c, eng = make(use_network=True)
        eng.route_updates(0, inserts=[(h, 0) for h in range(200)], removes=[])
        c.engine.run()
        assert eng.total_hashes == 200
        assert eng.stats.updates_applied == 200
        assert eng.stats.batches_sent >= 4  # spread over 4 home nodes

    def test_batching_respects_batch_size(self):
        c = Cluster(1)  # single node: everything to one home
        eng = ContentTracingEngine(c, use_network=True, batch_size=64)
        eng.route_updates(0, inserts=[(h, 0) for h in range(200)], removes=[])
        c.engine.run()
        # 200 updates to one destination in batches of <= 64 -> 4 batches
        assert eng.stats.batches_sent == 4

    def test_loss_leaves_view_stale(self):
        """Saturating the network loses updates; the DHT view just misses
        entries — the platform stays best-effort, never wrong."""
        c = Cluster(4, cost="new-cluster")
        eng = ContentTracingEngine(c, use_network=True)
        n = 60000
        for node in range(4):
            eng.route_updates(node,
                              inserts=[(node * n + i, 0) for i in range(n)],
                              removes=[])
        c.engine.run()
        applied = eng.total_hashes
        assert applied <= 4 * n
        assert applied == eng.stats.updates_applied
        lost = c.network.stats.updates_lost
        assert applied + lost == 4 * n

    def test_remove_of_lost_insert_is_noop(self):
        c, eng = make(use_network=True)
        eng.route_updates(0, inserts=[], removes=[(777, 3)])
        c.engine.run()
        assert eng.total_hashes == 0
        assert eng.total_copies == 0

    def test_representation_factor_scales_wire_updates(self):
        c = Cluster(2)
        eng = ContentTracingEngine(c, use_network=True, n_represented=16)
        eng.route_updates(0, inserts=[(1, 0), (2, 0)], removes=[])
        c.engine.run()
        assert c.network.stats.updates_sent == 32


class TestUpdateEpochs:
    """Per-shard update epochs (the serving result cache's invalidation
    signal, docs/SERVING.md)."""

    def test_insert_bumps_only_home_shard(self):
        c, eng = make()
        before = eng.epoch_vector()
        eng.route_updates(0, inserts=[(123, 0)], removes=[])
        home = eng.home_node(123)
        after = eng.epoch_vector()
        assert after[home] == before[home] + 1
        for n in range(4):
            if n != home:
                assert after[n] == before[n]

    def test_remove_bumps_home_shard(self):
        c, eng = make()
        eng.route_updates(0, inserts=[(123, 0)], removes=[])
        home = eng.home_node(123)
        e0 = eng.shard_epoch(home)
        eng.route_updates(0, inserts=[], removes=[(123, 0)])
        assert eng.shard_epoch(home) == e0 + 1

    def test_global_epoch_counts_every_bump(self):
        c, eng = make()
        g0 = eng.global_epoch
        eng.route_updates(0, inserts=[(1, 0), (2, 0), (3, 0)], removes=[])
        touched = len({eng.home_node(h) for h in (1, 2, 3)})
        assert eng.global_epoch == g0 + touched

    def test_networked_apply_bumps_epochs(self):
        c, eng = make(use_network=True)
        g0 = eng.global_epoch
        eng.route_updates(0, inserts=[(7, 0)], removes=[])
        c.engine.run()
        assert eng.global_epoch > g0

    def test_failure_and_repair_bump_all(self):
        c, eng = make()
        eng.route_updates(0, inserts=[(9, 0)], removes=[])
        before = eng.epoch_vector()
        eng.node_failed(2)
        mid = eng.epoch_vector()
        assert (mid > before).all()
        eng.node_restarted(2)
        after = eng.epoch_vector()
        assert (after > mid).all()
        eng.repair()
        assert (eng.epoch_vector() > after).all()

    def test_clear_and_remove_entity_bump_all(self):
        c, eng = make()
        eng.route_updates(0, inserts=[(5, 1)], removes=[])
        g0 = eng.global_epoch
        assert eng.remove_entity(1) == 1
        assert eng.global_epoch == g0 + 1
        eng.clear()
        assert eng.global_epoch == g0 + 2
        assert eng.total_hashes == 0

    def test_epoch_vector_is_a_copy(self):
        c, eng = make()
        v = eng.epoch_vector()
        v[:] = 99
        assert eng.shard_epoch(0) != 99 or eng.epoch_vector()[0] != 99
        assert (eng.epoch_vector() != v).any()
