"""Unit tests for reporting helpers."""

import pytest

from repro.util.stats import Table, check_monotone, fmt_bytes, fmt_time_s


class TestTable:
    def make(self):
        t = Table("Fig X", "nodes", x_values=[1, 2, 4])
        t.add_series("raw", [1.0, 2.0, 4.0])
        t.add_series("concord", [1.5, 2.5, 4.5])
        return t

    def test_get_series(self):
        t = self.make()
        assert t.get("raw").values == [1.0, 2.0, 4.0]
        with pytest.raises(KeyError):
            t.get("missing")

    def test_render_contains_all_rows(self):
        out = self.make().render()
        assert "Fig X" in out
        assert "nodes" in out
        assert out.count("\n") >= 5

    def test_render_handles_short_series(self):
        t = Table("t", "x", x_values=[1, 2])
        t.add_series("s", [1.0])
        out = t.render()
        assert "-" in out
        assert "1" in out

    def test_render_rejects_over_long_series(self):
        """A series longer than the x-axis would silently lose values;
        render must refuse instead."""
        t = Table("t", "x", x_values=[1, 2])
        t.add_series("ok", [1.0, 2.0])
        t.add_series("too_long", [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="too_long"):
            t.render()
        with pytest.raises(ValueError):
            str(t)

    def test_render_rejects_series_on_empty_axis(self):
        t = Table("t", "x")
        t.add_series("s", [1.0])
        with pytest.raises(ValueError):
            t.render()

    def test_notes_rendered(self):
        t = self.make()
        t.note("measured on sim")
        assert "measured on sim" in t.render()

    def test_incremental_series(self):
        t = Table("t", "x")
        s = t.add_series("y")
        t.x_values.append(1)
        s.append(3)
        assert t.get("y").values == [3.0]


class TestFormatting:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2 KB"
        assert "MB" in fmt_bytes(15 * 1024 * 1024)
        assert "GB" in fmt_bytes(3 * 1024**3)

    def test_fmt_time(self):
        assert "ns" in fmt_time_s(5e-9)
        assert "us" in fmt_time_s(5e-6)
        assert "ms" in fmt_time_s(5e-3)
        assert fmt_time_s(2.0) == "2 s"


class TestMonotone:
    def test_in_public_api(self):
        """Regression: check_monotone was missing from __all__, so
        ``from repro.util.stats import *`` silently lost it."""
        import repro.util.stats as stats

        assert "check_monotone" in stats.__all__
        ns = {}
        exec("from repro.util.stats import *", ns)
        assert "check_monotone" in ns

    def test_increasing(self):
        assert check_monotone([1, 2, 3])
        assert not check_monotone([1, 3, 2])

    def test_decreasing(self):
        assert check_monotone([3, 2, 1], increasing=False)

    def test_tolerance(self):
        assert check_monotone([1.0, 0.99, 2.0], tol=0.05)
