"""Unit tests for content hashing."""

import hashlib

import numpy as np
import pytest

from repro.util.hashing import (
    HashAlgo,
    hash_bytes,
    md5_64,
    mix64,
    page_hash,
    page_hashes,
    superfasthash32,
    superfasthash32_batch,
    superfasthash64,
    unmix64,
)


class TestMix64:
    def test_scalar_roundtrip(self):
        for x in [0, 1, 2**63, 2**64 - 1, 0xDEADBEEF]:
            assert int(unmix64(mix64(x))) == x

    def test_array_roundtrip(self):
        rng = np.random.default_rng(0)
        xs = rng.integers(0, 2**63, size=1000, dtype=np.uint64)
        assert np.array_equal(unmix64(mix64(xs)), xs)

    def test_deterministic(self):
        assert int(mix64(12345)) == int(mix64(12345))

    def test_scalar_matches_array(self):
        xs = np.array([7, 99, 2**40], dtype=np.uint64)
        ys = mix64(xs)
        for x, y in zip(xs.tolist(), ys.tolist()):
            assert int(mix64(int(x))) == y

    def test_avalanche(self):
        """Flipping one input bit flips ~half the output bits."""
        a = int(mix64(0x1234567890ABCDEF))
        b = int(mix64(0x1234567890ABCDEE))
        flipped = bin(a ^ b).count("1")
        assert 16 <= flipped <= 48

    def test_output_dtype(self):
        assert mix64(np.uint64(5)).dtype == np.uint64
        assert mix64(np.arange(4, dtype=np.uint64)).dtype == np.uint64


class TestPageHashes:
    def test_bijective_on_distinct_ids(self):
        ids = np.arange(10000, dtype=np.uint64)
        hs = page_hashes(ids)
        assert len(np.unique(hs)) == len(ids)

    def test_equal_ids_equal_hashes(self):
        ids = np.array([5, 5, 9, 5], dtype=np.uint64)
        hs = page_hashes(ids)
        assert hs[0] == hs[1] == hs[3]
        assert hs[0] != hs[2]

    def test_scalar_wrapper(self):
        ids = np.array([77], dtype=np.uint64)
        assert page_hash(77) == int(page_hashes(ids)[0])

    def test_zero_id_nonzero_hash(self):
        assert page_hash(0) != 0

    def test_distribution_uniformity(self):
        """Hash high bits should be roughly uniform (chi-square-ish)."""
        hs = page_hashes(np.arange(64000, dtype=np.uint64))
        buckets = (hs >> np.uint64(58)).astype(int)  # 64 buckets
        counts = np.bincount(buckets, minlength=64)
        assert counts.min() > 64000 / 64 * 0.8
        assert counts.max() < 64000 / 64 * 1.2


class TestSuperFastHash:
    def test_deterministic(self):
        assert superfasthash32(b"hello world") == superfasthash32(b"hello world")

    def test_distinct_inputs(self):
        seen = {superfasthash32(bytes([i, j])) for i in range(16)
                for j in range(16)}
        assert len(seen) == 256

    def test_length_tails(self):
        """1/2/3-byte tails hash distinctly from each other and prefixes."""
        vals = {superfasthash32(b"abcd"[:n]) for n in range(5)}
        assert len(vals) == 5

    def test_empty(self):
        assert isinstance(superfasthash32(b""), int)

    def test_seed_changes_hash(self):
        assert superfasthash32(b"data") != superfasthash32(b"data", seed=1)

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        pages = rng.integers(0, 256, size=(16, 64), dtype=np.uint8)
        batch = superfasthash32_batch(pages)
        for i in range(16):
            assert int(batch[i]) == superfasthash32(pages[i].tobytes())

    def test_batch_4kb_pages(self):
        rng = np.random.default_rng(2)
        pages = rng.integers(0, 256, size=(4, 4096), dtype=np.uint8)
        batch = superfasthash32_batch(pages)
        assert int(batch[0]) == superfasthash32(pages[0].tobytes())

    def test_batch_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            superfasthash32_batch(np.zeros(16, dtype=np.uint8))
        with pytest.raises(ValueError):
            superfasthash32_batch(np.zeros((2, 3), dtype=np.uint8))

    def test_sfh64_combines_two_seeds(self):
        h = superfasthash64(b"block content")
        assert h >> 32 == superfasthash32(b"block content")
        assert h & 0xFFFFFFFF == superfasthash32(b"block content",
                                                 seed=0x5BD1E995)


class TestHashBytes:
    def test_md5_64_matches_hashlib(self):
        data = b"x" * 4096
        expect = int.from_bytes(hashlib.md5(data).digest()[:8], "little")
        assert md5_64(data) == expect

    def test_algo_dispatch(self):
        data = b"some page"
        assert hash_bytes(data, HashAlgo.MD5) == md5_64(data)
        assert hash_bytes(data, HashAlgo.SUPERFAST) == superfasthash64(data)

    def test_algos_disagree(self):
        data = b"content"
        assert hash_bytes(data, HashAlgo.MD5) != hash_bytes(
            data, HashAlgo.SUPERFAST)

    def test_bad_algo(self):
        with pytest.raises(ValueError):
            hash_bytes(b"", "nope")  # type: ignore[arg-type]
