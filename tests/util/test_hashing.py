"""Unit tests for content hashing."""

import hashlib

import numpy as np
import pytest

from repro.util.hashing import (
    HashAlgo,
    hash_bytes,
    md5_64,
    mix64,
    page_hash,
    page_hashes,
    superfasthash32,
    superfasthash32_batch,
    superfasthash64,
    unmix64,
)


class TestMix64:
    def test_scalar_roundtrip(self):
        for x in [0, 1, 2**63, 2**64 - 1, 0xDEADBEEF]:
            assert int(unmix64(mix64(x))) == x

    def test_array_roundtrip(self):
        rng = np.random.default_rng(0)
        xs = rng.integers(0, 2**63, size=1000, dtype=np.uint64)
        assert np.array_equal(unmix64(mix64(xs)), xs)

    def test_deterministic(self):
        assert int(mix64(12345)) == int(mix64(12345))

    def test_scalar_matches_array(self):
        xs = np.array([7, 99, 2**40], dtype=np.uint64)
        ys = mix64(xs)
        for x, y in zip(xs.tolist(), ys.tolist()):
            assert int(mix64(int(x))) == y

    def test_avalanche(self):
        """Flipping one input bit flips ~half the output bits."""
        a = int(mix64(0x1234567890ABCDEF))
        b = int(mix64(0x1234567890ABCDEE))
        flipped = bin(a ^ b).count("1")
        assert 16 <= flipped <= 48

    def test_output_dtype(self):
        assert mix64(np.uint64(5)).dtype == np.uint64
        assert mix64(np.arange(4, dtype=np.uint64)).dtype == np.uint64


class TestPageHashes:
    def test_bijective_on_distinct_ids(self):
        ids = np.arange(10000, dtype=np.uint64)
        hs = page_hashes(ids)
        assert len(np.unique(hs)) == len(ids)

    def test_equal_ids_equal_hashes(self):
        ids = np.array([5, 5, 9, 5], dtype=np.uint64)
        hs = page_hashes(ids)
        assert hs[0] == hs[1] == hs[3]
        assert hs[0] != hs[2]

    def test_scalar_wrapper(self):
        ids = np.array([77], dtype=np.uint64)
        assert page_hash(77) == int(page_hashes(ids)[0])

    def test_zero_id_nonzero_hash(self):
        assert page_hash(0) != 0

    def test_distribution_uniformity(self):
        """Hash high bits should be roughly uniform (chi-square-ish)."""
        hs = page_hashes(np.arange(64000, dtype=np.uint64))
        buckets = (hs >> np.uint64(58)).astype(int)  # 64 buckets
        counts = np.bincount(buckets, minlength=64)
        assert counts.min() > 64000 / 64 * 0.8
        assert counts.max() < 64000 / 64 * 1.2


class TestSuperFastHash:
    def test_deterministic(self):
        assert superfasthash32(b"hello world") == superfasthash32(b"hello world")

    def test_distinct_inputs(self):
        seen = {superfasthash32(bytes([i, j])) for i in range(16)
                for j in range(16)}
        assert len(seen) == 256

    def test_length_tails(self):
        """1/2/3-byte tails hash distinctly from each other and prefixes."""
        vals = {superfasthash32(b"abcd"[:n]) for n in range(5)}
        assert len(vals) == 5

    def test_empty(self):
        assert isinstance(superfasthash32(b""), int)

    def test_seed_changes_hash(self):
        assert superfasthash32(b"data") != superfasthash32(b"data", seed=1)

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        pages = rng.integers(0, 256, size=(16, 64), dtype=np.uint8)
        batch = superfasthash32_batch(pages)
        for i in range(16):
            assert int(batch[i]) == superfasthash32(pages[i].tobytes())

    def test_batch_4kb_pages(self):
        rng = np.random.default_rng(2)
        pages = rng.integers(0, 256, size=(4, 4096), dtype=np.uint8)
        batch = superfasthash32_batch(pages)
        assert int(batch[0]) == superfasthash32(pages[0].tobytes())

    def test_batch_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            superfasthash32_batch(np.zeros(16, dtype=np.uint8))
        with pytest.raises(ValueError):
            superfasthash32_batch(np.zeros((2, 3), dtype=np.uint8))

    def test_sfh64_combines_two_seeds(self):
        h = superfasthash64(b"block content")
        assert h >> 32 == superfasthash32(b"block content")
        assert h & 0xFFFFFFFF == superfasthash32(b"block content",
                                                 seed=0x5BD1E995)


class TestHashBytes:
    def test_md5_64_matches_hashlib(self):
        data = b"x" * 4096
        expect = int.from_bytes(hashlib.md5(data).digest()[:8], "little")
        assert md5_64(data) == expect

    def test_algo_dispatch(self):
        data = b"some page"
        assert hash_bytes(data, HashAlgo.MD5) == md5_64(data)
        assert hash_bytes(data, HashAlgo.SUPERFAST) == superfasthash64(data)

    def test_algos_disagree(self):
        data = b"content"
        assert hash_bytes(data, HashAlgo.MD5) != hash_bytes(
            data, HashAlgo.SUPERFAST)

    def test_bad_algo(self):
        with pytest.raises(ValueError):
            hash_bytes(b"", "nope")  # type: ignore[arg-type]


def _sfh_c_reference(data: bytes, seed: int | None = None) -> int:
    """Direct transcription of Hsieh's published SuperFastHash C code.

    Pure-Python/uint32 arithmetic, independent of the NumPy implementation
    under test.  The odd tail byte goes through ``(signed char)`` in the C
    (cases 3 and 1), so bytes >= 0x80 sign-extend; the 2-byte tail uses
    get16bits and stays unsigned.
    """
    M = 0xFFFFFFFF
    h = (len(data) if seed is None else seed) & M
    n4, rem = divmod(len(data), 4)
    for i in range(n4):
        lo = data[4 * i] | (data[4 * i + 1] << 8)
        hi = data[4 * i + 2] | (data[4 * i + 3] << 8)
        h = (h + lo) & M
        tmp = ((hi << 11) & M) ^ h
        h = ((h << 16) & M) ^ tmp
        h = (h + (h >> 11)) & M
    t = data[n4 * 4:]
    if rem == 3:
        h = (h + (t[0] | (t[1] << 8))) & M
        h ^= (h << 16) & M
        sc = t[2] - 256 if t[2] >= 128 else t[2]
        h ^= (sc << 18) & M
        h = (h + (h >> 11)) & M
    elif rem == 2:
        h = (h + (t[0] | (t[1] << 8))) & M
        h ^= (h << 11) & M
        h = (h + (h >> 17)) & M
    elif rem == 1:
        sc = t[0] - 256 if t[0] >= 128 else t[0]
        h = (h + sc) & M
        h ^= (h << 10) & M
        h = (h + (h >> 1)) & M
    h ^= (h << 3) & M
    h = (h + (h >> 5)) & M
    h ^= (h << 4) & M
    h = (h + (h >> 17)) & M
    h ^= (h << 25) & M
    h = (h + (h >> 6)) & M
    return h


class TestSFHReferenceVectors:
    """superfasthash32 must match Hsieh's C for every tail length,
    including tail bytes >= 0x80 where (signed char) sign-extends."""

    VECTORS = {
        b"": 0x00000000,
        b"a": 0x115EA782,
        b"ab": 0x516B8B44,
        b"abc": 0xD2BE198A,
        b"abcd": 0xDAD8B8DB,
        b"hello world": 0xA68C6882,
        # high-bit bytes in each tail position
        b"\x80": 0xF30533C4,
        b"\xff": 0x00000000,          # len=1, +(-1) cancels hash=len=1
        b"\x00\xff": 0x59780F22,
        b"ab\xff": 0xC25F0954,        # rem==3, (signed char)<<18
        b"ab\x80": 0x81AA4BD5,
        b"\xff\xff\xff": 0xCD1CA2A0,
        b"abcd\xff": 0xBC3C1B4D,      # rem==1 after a full word
        b"abcd\xfe\xff": 0xCB9EFF66,  # rem==2 stays unsigned
        b"abcd\xff\xff\xff": 0x41C18F78,
        bytes(range(240, 256)) + b"\x81\x92\xa3": 0x2AE68E1A,
    }

    def test_frozen_vectors(self):
        for data, want in self.VECTORS.items():
            assert superfasthash32(data) == want, data

    def test_reference_agrees_with_frozen_vectors(self):
        for data, want in self.VECTORS.items():
            assert _sfh_c_reference(data) == want, data

    def test_all_tail_lengths_all_byte_values(self):
        """Sweep every tail length with every possible final byte."""
        for prefix in (b"", b"wxyz"):
            for tail_len in (1, 2, 3):
                for b in (0x00, 0x01, 0x7F, 0x80, 0x81, 0xFE, 0xFF):
                    data = prefix + bytes([0x42] * (tail_len - 1)) + bytes([b])
                    assert superfasthash32(data) == _sfh_c_reference(data), \
                        (prefix, tail_len, b)

    def test_seeded_variant_matches_reference(self):
        for seed in (0, 1, 7, 0x5BD1E995):
            for data in (b"ab\x80", b"\xff", b"abcde\xff\xfe"):
                assert superfasthash32(data, seed=seed) == \
                    _sfh_c_reference(data, seed=seed)

    def test_batch_matches_fixed_scalar(self):
        rng = np.random.default_rng(3)
        pages = rng.integers(0, 256, size=(8, 32), dtype=np.uint8)
        batch = superfasthash32_batch(pages)
        for i in range(8):
            assert int(batch[i]) == _sfh_c_reference(pages[i].tobytes())
