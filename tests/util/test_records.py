"""Unit tests for wire records and size accounting."""

from repro.util.records import (
    CommandInvoke,
    CommandResult,
    ControlMessage,
    HandledExchange,
    Message,
    MsgKind,
    QueryRequest,
    QueryResponse,
    UpdateBatch,
    UDP_HEADER_BYTES,
)


def test_base_message_wire_size_includes_headers():
    m = Message(MsgKind.ACK, 0, 1)
    assert m.wire_bytes() == UDP_HEADER_BYTES + 16


def test_update_batch_size_scales_with_updates():
    b0 = UpdateBatch(MsgKind.UPDATE, 0, 1)
    b2 = UpdateBatch(MsgKind.UPDATE, 0, 1, inserts=[(1, 2), (3, 4)])
    assert b2.wire_bytes() - b0.wire_bytes() == 2 * 13


def test_update_batch_counts_removes():
    b = UpdateBatch(MsgKind.UPDATE, 0, 1, inserts=[(1, 2)], removes=[(3, 4)])
    assert b.n_updates() == 2


def test_update_batch_representation_factor():
    b = UpdateBatch(MsgKind.UPDATE, 0, 1, inserts=[(1, 2)], n_represented=64)
    assert b.n_updates() == 64
    assert b.payload_bytes() == 13 * 64


def test_query_messages_have_fixed_small_sizes():
    req = QueryRequest(MsgKind.QUERY_REQ, 0, 1, query="num_copies", args=(5,))
    resp = QueryResponse(MsgKind.QUERY_RESP, 1, 0, result=3)
    assert req.payload_bytes() == 32
    assert resp.payload_bytes() == 16


def test_control_message_body_bytes():
    m = ControlMessage(MsgKind.CONTROL, 0, 3, op="start", body_bytes=256)
    assert m.payload_bytes() == 256


def test_invoke_and_result_scale_with_representation():
    inv = CommandInvoke(MsgKind.CMD_INVOKE, 0, 1, content_hash=9,
                        entity_id=2, n_represented=4)
    res = CommandResult(MsgKind.CMD_RESULT, 1, 0, content_hash=9,
                        entity_id=2, n_represented=4)
    assert inv.payload_bytes() == 16 * 4
    assert res.payload_bytes() == 20 * 4


def test_handled_exchange_scales_with_entries():
    ex = HandledExchange(MsgKind.HASH_EXCHANGE, 0, 1,
                         entries=[(1, None)] * 10, n_represented=2)
    assert ex.payload_bytes() == 20 * 10 * 2
