"""Unit tests for EntityBitmap (refcounted entity sets)."""

import pytest

from repro.util.bitmap import EntityBitmap


class TestBasicSetOps:
    def test_empty(self):
        b = EntityBitmap()
        assert len(b) == 0
        assert b.num_copies == 0
        assert not b
        assert 0 not in b

    def test_add_contains(self):
        b = EntityBitmap()
        b.add(3)
        assert 3 in b
        assert 2 not in b
        assert len(b) == 1

    def test_construct_from_iterable(self):
        b = EntityBitmap([1, 5, 9])
        assert b.to_set() == {1, 5, 9}

    def test_large_ids_grow_words(self):
        b = EntityBitmap()
        b.add(1000)
        assert 1000 in b
        assert 999 not in b
        assert len(b) == 1

    def test_discard(self):
        b = EntityBitmap([4])
        assert b.discard(4)
        assert 4 not in b
        assert not b.discard(4)

    def test_discard_unknown(self):
        b = EntityBitmap()
        assert not b.discard(7)
        assert not b.discard(100000)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            EntityBitmap().add(-1)


class TestRefcounting:
    def test_multiple_copies_same_entity(self):
        b = EntityBitmap()
        b.add(2)
        b.add(2)
        b.add(2)
        assert b.copies(2) == 3
        assert b.num_copies == 3
        assert b.num_entities == 1

    def test_discard_peels_copies(self):
        b = EntityBitmap([2, 2])
        assert b.discard(2)
        assert 2 in b
        assert b.copies(2) == 1
        assert b.discard(2)
        assert 2 not in b
        assert b.copies(2) == 0

    def test_copies_of_absent(self):
        assert EntityBitmap().copies(3) == 0


class TestAlgebra:
    def test_intersection_count(self):
        a = EntityBitmap([1, 2, 3])
        b = EntityBitmap([2, 3, 4])
        assert a.intersection_count(b) == 2
        assert a.union_count(b) == 4

    def test_intersects(self):
        assert EntityBitmap([1]).intersects(EntityBitmap([1, 9]))
        assert not EntityBitmap([1]).intersects(EntityBitmap([2]))

    def test_different_lengths_align(self):
        a = EntityBitmap([1])
        b = EntityBitmap([1, 500])
        assert a.intersection_count(b) == 1
        assert b.intersection_count(a) == 1

    def test_members_among(self):
        b = EntityBitmap([3, 7])
        assert b.members_among([7, 1, 3]) == [7, 3]

    def test_eq(self):
        assert EntityBitmap([1, 2]) == EntityBitmap([2, 1])
        assert EntityBitmap([1]) != EntityBitmap([1, 1])
        a = EntityBitmap([1])
        a.add(300)
        a.discard(300)
        assert a == EntityBitmap([1])


class TestConversion:
    def test_to_array_sorted(self):
        b = EntityBitmap([9, 1, 70])
        assert b.to_array().tolist() == [1, 9, 70]

    def test_iter(self):
        assert sorted(EntityBitmap([5, 2])) == [2, 5]

    def test_storage_bytes_positive(self):
        b = EntityBitmap([1])
        s1 = b.storage_bytes()
        b.add(1)  # refcount overflow entry
        assert b.storage_bytes() > s1
