"""Unit tests for the churn driver."""

import numpy as np
import pytest

from repro import Cluster, ConCORD, workloads
from repro.workloads.churn import ChurnDriver


def make_entities(n=2, pages=128, seed=0):
    cluster = Cluster(2, seed=seed)
    ents = workloads.instantiate(cluster, workloads.nasty(n, pages, seed=seed))
    return cluster, ents


class TestValidation:
    def test_bad_pattern(self):
        _c, ents = make_entities()
        with pytest.raises(ValueError):
            ChurnDriver(ents, 4, pattern="zigzag")

    def test_bad_rate(self):
        _c, ents = make_entities()
        with pytest.raises(ValueError):
            ChurnDriver(ents, 0)

    def test_no_entities(self):
        with pytest.raises(ValueError):
            ChurnDriver([], 4)

    def test_bad_hotspot(self):
        _c, ents = make_entities()
        with pytest.raises(ValueError):
            ChurnDriver(ents, 4, pattern="hotspot", hotspot_fraction=0.0)


class TestPatterns:
    def test_tick_writes_expected_count(self):
        _c, ents = make_entities()
        d = ChurnDriver(ents, pages_per_tick=8)
        assert d.tick() == 8 * len(ents)
        assert d.stats.ticks == 1
        assert d.stats.pages_written == 16

    def test_uniform_changes_content(self):
        _c, ents = make_entities()
        before = ents[0].snapshot()
        ChurnDriver(ents, 16, pattern="uniform").tick()
        assert (ents[0].snapshot() != before).sum() > 0

    def test_hotspot_confines_writes(self):
        _c, ents = make_entities(pages=200)
        d = ChurnDriver(ents, 20, pattern="hotspot", hotspot_fraction=0.1)
        for _ in range(10):
            d.tick()
        dirty_idxs = np.flatnonzero(ents[0].dirty)
        assert dirty_idxs.max() < 20  # 10% of 200

    def test_streaming_sweeps_address_space(self):
        _c, ents = make_entities(pages=64)
        d = ChurnDriver(ents, 16, pattern="streaming")
        for _ in range(4):
            d.tick()
        # One full sweep: every page written exactly once per sweep.
        assert ents[0].dirty.all()

    def test_pool_content_creates_redundancy(self):
        _c, ents = make_entities(pages=64)
        pool = np.array([42], dtype=np.uint64)
        d = ChurnDriver(ents, 64, content_pool=pool)
        d.tick()
        assert (ents[0].pages == 42).all()
        assert (ents[1].pages == 42).all()

    def test_fresh_content_unique(self):
        _c, ents = make_entities(pages=64)
        d = ChurnDriver(ents, 64, pattern="streaming")
        d.tick()
        all_ids = np.concatenate([e.pages for e in ents])
        assert len(np.unique(all_ids)) == len(all_ids)

    def test_deterministic(self):
        snaps = []
        for _ in range(2):
            _c, ents = make_entities(seed=3)
            d = ChurnDriver(ents, 8, seed=9)
            d.tick()
            d.tick()
            snaps.append([e.snapshot() for e in ents])
        for a, b in zip(*snaps):
            assert np.array_equal(a, b)


class TestEngineIntegration:
    def test_run_on_engine(self):
        cluster, ents = make_entities()
        d = ChurnDriver(ents, 4)
        d.run_on(cluster.engine, period=1.0, horizon=5.0)
        cluster.engine.run()
        assert d.stats.ticks == 5

    def test_bad_period(self):
        cluster, ents = make_entities()
        with pytest.raises(ValueError):
            ChurnDriver(ents, 4).run_on(cluster.engine, 0.0, 5.0)

    def test_churn_with_monitor_keeps_dht_converging(self):
        """Monitor scans interleaved with churn: after churn stops and one
        final sync, the DHT matches ground truth exactly."""
        from repro.queries.reference import ReferenceModel

        cluster = Cluster(2, seed=4)
        ents = workloads.instantiate(cluster, workloads.moldy(2, 128, seed=4))
        concord = ConCORD(cluster)
        concord.initial_scan()
        d = ChurnDriver(ents, 16, pattern="uniform", seed=4)
        for _ in range(5):
            d.tick()
            concord.sync()
        concord.sync()
        ref = ReferenceModel(cluster)
        eids = [e.entity_id for e in ents]
        assert concord.sharing(eids).value == pytest.approx(ref.sharing(eids))
        assert concord.total_tracked_hashes == len(ref.distinct_content(eids))
