"""Unit tests for workload generators."""

import numpy as np
import pytest

from repro import Cluster
from repro.workloads.synthetic import (
    WorkloadSpec,
    generate_pages,
    hpccg,
    instantiate,
    moldy,
    nasty,
    uniform_random,
)


class TestSpecValidation:
    def test_bad_fractions(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", 1, 8, common_frac=0.8, intra_frac=0.4)
        with pytest.raises(ValueError):
            WorkloadSpec("x", 1, 8, common_frac=-0.1)

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", 0, 8)
        with pytest.raises(ValueError):
            WorkloadSpec("x", 1, 0)

    def test_with_helpers(self):
        s = moldy(2, 64).with_entities(8).with_pages(128)
        assert s.n_entities == 8
        assert s.pages_per_entity == 128
        assert s.name == "moldy"


class TestGeneration:
    def test_shapes(self):
        arrays = generate_pages(moldy(3, 100, seed=1))
        assert len(arrays) == 3
        assert all(len(a) == 100 for a in arrays)
        assert all(a.dtype == np.uint64 for a in arrays)

    def test_deterministic(self):
        a = generate_pages(moldy(2, 64, seed=5))
        b = generate_pages(moldy(2, 64, seed=5))
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_seed_changes_content(self):
        a = generate_pages(moldy(2, 64, seed=1))
        b = generate_pages(moldy(2, 64, seed=2))
        assert not np.array_equal(a[0], b[0])

    def test_nasty_globally_unique(self):
        arrays = generate_pages(nasty(4, 256))
        all_ids = np.concatenate(arrays)
        assert len(np.unique(all_ids)) == len(all_ids)

    def test_moldy_has_cross_entity_sharing(self):
        arrays = generate_pages(moldy(2, 256, seed=0))
        shared = np.intersect1d(arrays[0], arrays[1])
        assert len(shared) > 0

    def test_moldy_has_intra_sharing(self):
        (pages,) = generate_pages(moldy(1, 256, seed=0))
        assert len(np.unique(pages)) < len(pages)

    def test_dos_decreases_with_entities_moldy(self):
        """Fig 14a's DoS shape: more ranks -> lower distinct/total."""
        def dos(n):
            arrays = generate_pages(moldy(n, 256, seed=0))
            all_ids = np.concatenate(arrays)
            return len(np.unique(all_ids)) / len(all_ids)

        d = [dos(n) for n in (1, 4, 16)]
        assert d[0] > d[1] > d[2]
        assert d[0] > 0.7          # single rank mostly distinct
        assert d[2] < 0.55         # strong collective redundancy at 16

    def test_uniform_random_pool_bounds_distinct(self):
        arrays = generate_pages(uniform_random(4, 128, distinct_pool=16,
                                               seed=1))
        all_ids = np.concatenate(arrays)
        assert len(np.unique(all_ids)) <= 16

    def test_hpccg_moderate(self):
        arrays = generate_pages(hpccg(4, 256, seed=0))
        all_ids = np.concatenate(arrays)
        dos = len(np.unique(all_ids)) / len(all_ids)
        assert 0.5 < dos < 0.95


class TestInstantiate:
    def test_round_robin_placement(self):
        c = Cluster(4)
        ents = instantiate(c, nasty(8, 16))
        assert [e.node_id for e in ents] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_packed_placement(self):
        c = Cluster(2)
        ents = instantiate(c, nasty(4, 16), placement="packed")
        assert [e.node_id for e in ents] == [0, 0, 1, 1]

    def test_bad_placement(self):
        c = Cluster(2)
        with pytest.raises(ValueError):
            instantiate(c, nasty(2, 8), placement="diagonal")

    def test_names_and_page_size(self):
        c = Cluster(2)
        ents = instantiate(c, moldy(2, 8), page_size=8192)
        assert ents[0].name == "moldy-0"
        assert ents[0].page_size == 8192
