"""/dev/shm hygiene: stale shared-segment dirs from killed runs are swept.

A ``kill -9`` skips every finalizer, leaving the run's RAM-backed
segment dir behind.  Segment dirs embed the owning pid in their name
(``concord-shards-<pid>-...``); the next pool to come up sweeps any
whose process no longer exists (docs/STORAGE.md).
"""

import os
import subprocess
import sys

from repro.exec.pool import ShardPool, _SEGMENT_PREFIX, sweep_stale_segments


def dead_pid() -> int:
    """A pid guaranteed not to exist: spawn a process and reap it."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestSweep:
    def test_dead_pid_dir_is_removed(self, tmp_path):
        stale = tmp_path / f"{_SEGMENT_PREFIX}{dead_pid()}-abc123"
        stale.mkdir()
        (stale / "shard0.u64").write_bytes(b"\0" * 16)
        assert sweep_stale_segments(str(tmp_path)) == 1
        assert not stale.exists()

    def test_own_pid_dir_is_kept(self, tmp_path):
        mine = tmp_path / f"{_SEGMENT_PREFIX}{os.getpid()}-live"
        mine.mkdir()
        assert sweep_stale_segments(str(tmp_path)) == 0
        assert mine.exists()

    def test_live_foreign_pid_dir_is_kept(self, tmp_path):
        # pid 1 is always alive (and not ours); kill(1, 0) raises EPERM
        # for normal users, ProcessLookupError never.
        other = tmp_path / f"{_SEGMENT_PREFIX}1-init"
        other.mkdir()
        sweep_stale_segments(str(tmp_path))
        assert other.exists()

    def test_unparseable_names_are_left_alone(self, tmp_path):
        for name in (f"{_SEGMENT_PREFIX}notapid-x", "unrelated-dir",
                     f"{_SEGMENT_PREFIX}", "concord-store-zzz"):
            (tmp_path / name).mkdir()
        assert sweep_stale_segments(str(tmp_path)) == 0
        assert sorted(p.name for p in tmp_path.iterdir()) == sorted(
            (f"{_SEGMENT_PREFIX}notapid-x", "unrelated-dir",
             f"{_SEGMENT_PREFIX}", "concord-store-zzz"))

    def test_missing_root_is_a_noop(self, tmp_path):
        assert sweep_stale_segments(str(tmp_path / "nope")) == 0

    def test_pool_startup_sweeps_its_root(self, tmp_path):
        stale = tmp_path / f"{_SEGMENT_PREFIX}{dead_pid()}-leftover"
        stale.mkdir()
        pool = ShardPool(workers=1, segment_dir=str(tmp_path))
        try:
            d = pool._segment_dir()        # first dir creation sweeps
            assert not stale.exists()
            assert os.path.basename(d).startswith(
                f"{_SEGMENT_PREFIX}{os.getpid()}-")
        finally:
            pool.close()
        assert not os.path.exists(d)       # close removes our own dir too

    def test_segment_dirs_are_pid_prefixed(self, tmp_path):
        pool = ShardPool(workers=2, segment_dir=str(tmp_path))
        try:
            d = pool._segment_dir()
            pid = os.path.basename(d)[len(_SEGMENT_PREFIX):].split("-", 1)[0]
            assert int(pid) == os.getpid()
        finally:
            pool.close()
