"""Picklability audit of everything the pool ships across processes.

Workers receive kernel functions, shard views, and plain-data args by
pickle; benchmark specs must survive it too so a spawn-method pool (or a
future remote runner) can execute them.  A closure sneaking into any of
these objects fails here, not in a worker traceback.
"""

import pickle

import numpy as np

from repro.core.config import ConCORDConfig
from repro.dht.partition import Partition
from repro.dht.table import ShardColumns
from repro.exec import ops
from repro.harness.benchsuite import build_default_runner, figure_runner
from repro.serve.config import ServeConfig
from tests.exec.test_shardpool import make_table


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestConfigsPickle:
    def test_concord_config(self):
        cfg = ConCORDConfig(n_represented=128, workers=4)
        got = roundtrip(cfg)
        assert got.workers == 4 and got.n_represented == 128

    def test_serve_config(self):
        cfg = ServeConfig(cache_capacity=0, verify_cache=True)
        got = roundtrip(cfg)
        assert got == cfg


class TestShardColumnsPickle:
    def test_inline_view(self):
        t = make_table()
        view = roundtrip(t.export_columns())
        assert view.attach().n_hashes == t.n_hashes

    def test_file_backed_view(self, tmp_path):
        t = make_table()
        view = roundtrip(t.export_columns(str(tmp_path / "s.u64")))
        # Arrays live in the segment file, not the pickle: the shipped
        # descriptor must stay O(1) no matter the shard size.
        assert len(pickle.dumps(view)) < 4096
        attached = view.attach()
        assert attached.n_hashes == t.n_hashes
        assert np.array_equal(attached.se_scan(255)[0], t.se_scan(255)[0])


class TestKernelsPickle:
    def test_every_ops_kernel_pickles_by_reference(self):
        for name in ops.__all__:
            obj = getattr(ops, name)
            assert roundtrip(obj) is obj or isinstance(obj, type)

    def test_breakdown_value_pickles(self):
        bd = ops.SharingBreakdown(10, 4, 3, 2)
        assert roundtrip(bd) == bd

    def test_partition_pickles(self):
        part = Partition(8)
        part.set_alive(3, False)
        got = roundtrip(part)
        hs = np.arange(100, dtype=np.uint64)
        assert np.array_equal(got.primary_nodes(hs), part.primary_nodes(hs))
        assert np.array_equal(got.home_nodes(hs), part.home_nodes(hs))


class TestBenchSpecsPickle:
    def test_every_registered_spec_pickles(self):
        runner = build_default_runner(workers=2)
        for name, spec in runner.specs.items():
            got = roundtrip(spec)
            assert got.name == name and got.params == spec.params

    def test_figure_runner_is_picklable(self):
        fn = roundtrip(figure_runner("fig09"))
        assert fn.name == "fig09" and fn.__name__ == "figure_fig09"
