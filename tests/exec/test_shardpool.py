"""ShardPool: shared-memory shard publishing and multi-core fan-out.

The backbone contract (docs/PARALLEL.md): a worker attaching a published
:class:`~repro.dht.table.ShardColumns` view sees exactly the coordinator's
shard, results always come back in shard-index order, and every job run
with ``workers=N`` is byte-identical to the inline ``workers=1`` path.
"""

import os

import numpy as np
import pytest

from repro.dht.table import LocalDHT, ShardColumns
from repro.exec import DEFAULT_MIN_ROWS, ShardPool
from repro.exec import ops


def make_table(node_id: int = 0, size: int = 500, seed: int = 0,
               wide: bool = True, extras: bool = True) -> LocalDHT:
    """A shard with packed rows, a wide (eid >= 64) spill, and extra
    multi-copy entries — every storage shape export must carry."""
    rng = np.random.default_rng(seed)
    t = LocalDHT(node_id=node_id)
    keys = rng.integers(0, 2**62, size=size, dtype=np.uint64)
    t.bulk_insert(keys, rng.integers(0, 8, size=size, dtype=np.int64))
    if wide:
        for h in keys[:5].tolist():
            t.insert(h, 70)
    if extras:
        for h in keys[5:10].tolist():
            t.insert(h, 3)
            t.insert(h, 3)  # second copy of the same (hash, entity)
    t.items_arrays()  # compact the delta overlay
    return t


def tables_agree(a: LocalDHT, b: LocalDHT, mask: int = (1 << 80) - 1):
    assert a.n_hashes == b.n_hashes
    assert a.n_copies == b.n_copies
    ha, la, wa = a.se_scan(mask)
    hb, lb, wb = b.se_scan(mask)
    assert np.array_equal(ha, hb)
    assert np.array_equal(la, lb)
    assert wa == wb
    assert dict(a.extra_items()) == dict(b.extra_items())


class TestExportAttach:
    def test_inline_roundtrip(self):
        t = make_table()
        view = t.export_columns()
        assert view.path is None
        tables_agree(t, view.attach())

    def test_file_backed_roundtrip(self, tmp_path):
        t = make_table()
        path = str(tmp_path / "shard.u64")
        view = t.export_columns(path)
        assert view.path == path
        assert os.path.getsize(path) == 16 * t.n_hashes  # 2 u64 per row
        tables_agree(t, view.attach())

    def test_empty_table_exports_inline(self, tmp_path):
        t = LocalDHT(node_id=3)
        view = t.export_columns(str(tmp_path / "empty.u64"))
        assert view.path is None  # no memmap of a zero-byte file
        attached = view.attach()
        assert attached.n_hashes == 0 and attached.n_copies == 0

    def test_attachment_is_read_only_snapshot(self, tmp_path):
        t = make_table()
        view = t.export_columns(str(tmp_path / "s.u64"))
        attached = view.attach()
        before = attached.n_hashes
        t.insert(12345, 0)  # later coordinator mutation
        assert attached.n_hashes == before  # snapshot unaffected


def double_id(table):
    return table.node_id * 2


class TestMapShards:
    @pytest.fixture()
    def shards(self):
        return [make_table(node_id=i, seed=i) for i in range(4)]

    def test_serial_matches_parallel(self, shards):
        mask = (1 << 80) - 1
        serial = ShardPool(1)
        with ShardPool(2, min_rows=0) as para:
            try:
                for fn, args in [(ops.se_scan, (mask,)),
                                 (ops.copy_histogram, (mask,)),
                                 (ops.count_at_least, (mask, 2)),
                                 (ops.pairwise_shared, (255,))]:
                    got_s = serial.map_shards(shards, fn, args)
                    got_p = para.map_shards(shards, fn, args)
                    assert len(got_s) == len(got_p) == len(shards)
                    for a, b in zip(got_s, got_p):
                        if isinstance(a, tuple):
                            for x, y in zip(a, b):
                                if isinstance(x, np.ndarray):
                                    assert np.array_equal(x, y)
                                else:
                                    assert x == y
                        else:
                            assert a == b
            finally:
                serial.close()

    def test_results_in_shard_index_order(self, shards):
        with ShardPool(2, min_rows=0) as pool:
            got = pool.map_shards(shards, double_id)
            assert got == [0, 2, 4, 6]

    def test_reduce_folds_in_shard_order(self, shards):
        # A non-commutative reduce exposes any completion-order gather.
        with ShardPool(2, min_rows=0) as pool:
            got = pool.map_shards(shards, double_id,
                                  reduce_fn=lambda a, b: a + [b], initial=[])
        assert got == [0, 2, 4, 6]

    def test_shard_filter_and_args_per_shard_align(self, shards):
        pool = ShardPool(1)
        got = pool.map_shards(
            shards, ops.count_at_least,
            args_per_shard=[((1 << 80) - 1, i + 1) for i in range(4)],
            shard_filter=lambda s: s.node_id % 2 == 0)
        want = [ops.count_at_least(shards[0], (1 << 80) - 1, 1),
                ops.count_at_least(shards[2], (1 << 80) - 1, 3)]
        assert got == want

    def test_misaligned_args_rejected(self, shards):
        pool = ShardPool(1)
        with pytest.raises(ValueError, match="align"):
            pool.map_shards(shards, double_id, args_per_shard=[()])
        with pytest.raises(ValueError, match="align"):
            pool.map_shards(shards, double_id, versions=[1])

    def test_small_jobs_stay_inline(self, shards):
        with ShardPool(2, min_rows=DEFAULT_MIN_ROWS) as pool:
            got = pool.map_shards(shards, double_id)  # ~2k rows << min_rows
            assert got == [0, 2, 4, 6]
            assert "procs" not in pool._state  # never spawned

    def test_publish_reuses_segment_on_same_version(self, shards):
        with ShardPool(2, min_rows=0) as pool:
            pool.map_shards(shards, double_id, versions=[7] * 4)
            first = {n: v.path for n, (_k, v) in pool._published.items()}
            pool.map_shards(shards, double_id, versions=[7] * 4)
            second = {n: v.path for n, (_k, v) in pool._published.items()}
            assert first == second  # cache hit: no re-export
            pool.map_shards(shards, double_id,
                            versions=[7, 8, 7, 7])  # shard 1 advanced
            third = {n: v.path for n, (_k, v) in pool._published.items()}
            assert third[1] != second[1]
            assert all(third[n] == second[n] for n in (0, 2, 3))
            assert not os.path.exists(second[1])  # stale segment unlinked

    def test_no_version_never_reuses(self, shards):
        with ShardPool(2, min_rows=0) as pool:
            pool.map_shards(shards, double_id)
            first = pool._published[0][1].path
            pool.map_shards(shards, double_id)
            assert pool._published[0][1].path != first


def add(a, b):
    return a + b


class TestRunTasks:
    def test_results_in_task_order(self):
        tasks = [(i, i * 10) for i in range(6)]
        serial = ShardPool(1)
        with ShardPool(2) as para:
            try:
                want = serial.run_tasks(add, tasks)
                got = para.run_tasks(add, tasks, work=10**9)
                assert got == want == [0, 11, 22, 33, 44, 55]
            finally:
                serial.close()

    def test_small_work_stays_inline(self):
        with ShardPool(2) as pool:
            assert pool.run_tasks(add, [(1, 2), (3, 4)], work=1) == [3, 7]
            assert "procs" not in pool._state


class TestLifecycle:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            ShardPool(0)

    def test_close_is_idempotent_and_removes_segments(self):
        pool = ShardPool(2, min_rows=0)
        shards = [make_table(node_id=i) for i in range(2)]
        pool.map_shards(shards, double_id)
        seg_dir = pool._state["dir"]
        assert os.path.isdir(seg_dir)
        pool.close()
        pool.close()
        assert not os.path.exists(seg_dir)

    def test_spawn_start_method(self):
        # Kernels and worker entries are module-level, so the pool works
        # under spawn too (the start method macOS/Windows default to).
        shards = [make_table(node_id=i, size=64) for i in range(2)]
        with ShardPool(2, min_rows=0, start_method="spawn") as pool:
            got = pool.map_shards(shards, ops.count_at_least,
                                  ((1 << 80) - 1, 1))
        want = [ops.count_at_least(s, (1 << 80) - 1, 1) for s in shards]
        assert got == want


class TestShardColumnsShapes:
    def test_wide_and_extras_survive_file_roundtrip(self, tmp_path):
        t = make_table(wide=True, extras=True)
        view = t.export_columns(str(tmp_path / "w.u64"))
        attached = view.attach()
        mask = 1 << 70
        ha, _la, wa = attached.se_scan(mask)
        hb, _lb, wb = t.se_scan(mask)
        assert np.array_equal(ha, hb) and wa == wb and len(ha) == 5
        assert isinstance(view, ShardColumns)
