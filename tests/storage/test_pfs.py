"""Unit tests for the storage substrate (append logs, RAM disk, PFS)."""

import pytest

from repro.storage import AppendLog, IOCosts, ParallelFileSystem, RamDisk, StorageError


class TestAppendLog:
    def make(self):
        return AppendLog("shared", IOCosts())

    def test_append_returns_sequential_offsets(self):
        log = self.make()
        assert [log.append(f"r{i}", 10) for i in range(5)] == list(range(5))
        assert log.n_records == 5
        assert log.total_bytes == 50
        assert log.appends == 5

    def test_read_back(self):
        log = self.make()
        off = log.append("payload", 4096)
        assert log.read(off) == "payload"
        assert log.record_bytes(off) == 4096

    def test_read_bad_offset(self):
        log = self.make()
        with pytest.raises(StorageError):
            log.read(0)
        log.append("x", 1)
        with pytest.raises(StorageError):
            log.record_bytes(7)

    def test_append_once_idempotent_per_key(self):
        """The multi-writer atomic-append-with-dedup the shared content
        file requires: racing writers on one hash store one copy."""
        log = self.make()
        o1, created1 = log.append_once(0xABC, "blk", 4096)
        o2, created2 = log.append_once(0xABC, "blk", 4096)
        assert created1 and not created2
        assert o1 == o2
        assert log.n_records == 1
        assert log.offset_of(0xABC) == o1
        assert log.offset_of(0xDEF) is None

    def test_mixed_keys_interleave_atomically(self):
        log = self.make()
        offs = {}
        for writer in range(4):          # 4 "concurrent" writers
            for k in range(8):
                offs.setdefault(k, log.append_once(k, f"b{k}", 64)[0])
        assert log.n_records == 8
        for k, off in offs.items():
            assert log.read(off) == f"b{k}"

    def test_closed_log_rejects_appends(self):
        log = self.make()
        log.close()
        with pytest.raises(StorageError):
            log.append("x", 1)

    def test_negative_size_rejected(self):
        with pytest.raises(StorageError):
            self.make().append("x", -1)

    def test_len(self):
        log = self.make()
        log.append("a", 1)
        assert len(log) == 1


class TestIOCosts:
    def test_client_time(self):
        c = IOCosts(append_base=1e-6, per_byte=1e-9)
        assert c.client_time(1000) == pytest.approx(2e-6)

    def test_shared_time_none_for_private(self):
        assert IOCosts().shared_time(10**9) == 0.0

    def test_shared_time_scales(self):
        c = IOCosts(shared_bw=1e9)
        assert c.shared_time(5e8) == pytest.approx(0.5)


class TestRamDisk:
    def test_logs_created_lazily_and_cached(self):
        rd = RamDisk()
        a = rd.log("ckpt-0")
        assert rd.log("ckpt-0") is a
        assert rd.log("ckpt-1") is not a
        assert len(rd.logs()) == 2

    def test_total_bytes(self):
        rd = RamDisk()
        rd.log("a").append("x", 100)
        rd.log("b").append("y", 50)
        assert rd.total_bytes == 150

    def test_rejects_shared_bw(self):
        with pytest.raises(StorageError):
            RamDisk(IOCosts(shared_bw=1e9))


class TestParallelFileSystem:
    def test_requires_shared_bw(self):
        with pytest.raises(StorageError):
            ParallelFileSystem(IOCosts(shared_bw=None))

    def test_append_costs_split(self):
        pfs = ParallelFileSystem(IOCosts(append_base=1e-6, per_byte=0,
                                         shared_bw=1e9))
        client, server = pfs.append_costs(10**6)
        assert client == pytest.approx(1e-6)
        assert server == pytest.approx(1e-3)

    def test_logs_shared_namespace(self):
        pfs = ParallelFileSystem()
        log = pfs.log("shared-content")
        log.append_once(1, "b", 4096)
        assert pfs.total_bytes == 4096
        assert pfs.log("shared-content") is log


class TestCheckpointIntegration:
    def test_pfs_shared_term_raises_wall_time(self):
        """A checkpoint writing its shared file through the PFS takes
        longer than the RAM-disk variant, by the shared-server term."""
        from repro import (CheckpointStore, CollectiveCheckpoint,
                           ServiceScope, workloads)
        from tests.conftest import make_system

        _c, ents, concord = make_system(
            n_nodes=4, spec=workloads.moldy(4, 512, seed=2))
        eids = [e.entity_id for e in ents]

        r_ram = concord.execute_command(
            CollectiveCheckpoint(CheckpointStore()), ServiceScope.of(eids))
        slow_pfs = ParallelFileSystem(IOCosts(shared_bw=2 * 1024**3))
        r_pfs = concord.execute_command(
            CollectiveCheckpoint(CheckpointStore(), pfs=slow_pfs),
            ServiceScope.of(eids))
        assert r_pfs.wall_time > r_ram.wall_time
        expected_term = (r_pfs.stats.handled * 4096) / (2 * 1024**3)
        assert (r_pfs.wall_time - r_ram.wall_time) == pytest.approx(
            expected_term, rel=0.05)
