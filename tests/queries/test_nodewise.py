"""Unit tests for node-wise queries (num_copies / entities, Fig 8)."""

import numpy as np
import pytest

from repro.queries.reference import ReferenceModel
from tests.conftest import make_system


class TestValues:
    def test_num_copies_matches_reference(self, concord4, cluster4):
        ref = ReferenceModel(cluster4)
        counts = ref.copy_counts(cluster4.all_entity_ids())
        some = list(counts)[:50]
        for h in some:
            assert concord4.num_copies(h).value == counts[h]

    def test_entities_matches_reference(self, concord4, cluster4):
        ref = ReferenceModel(cluster4)
        counts = ref.copy_counts(cluster4.all_entity_ids())
        for h in list(counts)[:30]:
            assert concord4.entities(h).value == ref.entities(h)

    def test_unknown_hash(self, concord4):
        assert concord4.num_copies(0xDEAD).value == 0
        assert concord4.entities(0xDEAD).value == set()

    def test_multicopy_within_entity(self):
        from repro import workloads
        spec = workloads.WorkloadSpec(name="dup", n_entities=1,
                                      pages_per_entity=64, common_frac=1.0,
                                      pool_frac=0.1)
        _cluster, ents, concord = make_system(n_nodes=2, spec=spec)
        hashes = ents[0].content_hashes()
        h, count = np.unique(hashes, return_counts=True)
        dup_hash = int(h[np.argmax(count)])
        assert concord.num_copies(dup_hash).value == int(count.max())
        assert concord.entities(dup_hash).value == {ents[0].entity_id}


class TestLatency:
    def test_ping_dominated(self, concord4, cluster4):
        """Fig 8: query latency ~ RTT, compute time an order smaller."""
        ents = cluster4.entities
        h = int(next(iter(ents.values())).content_hashes()[0])
        home = concord4.tracing.home_node(h)
        issuing = (home + 1) % cluster4.n_nodes
        r = concord4.num_copies(h, issuing_node=issuing)
        assert r.latency > cluster4.cost.rtt()
        assert r.compute_time < r.latency / 3

    def test_local_issue_skips_network(self, concord4, cluster4):
        h = int(next(iter(cluster4.entities.values())).content_hashes()[0])
        home = concord4.tracing.home_node(h)
        r = concord4.num_copies(h, issuing_node=home)
        assert r.latency == r.compute_time

    def test_latency_independent_of_table_size(self):
        """The flatness claim of Fig 8."""
        import repro.workloads as w
        lat = []
        for pages in (64, 1024):
            _c, ents, concord = make_system(
                n_nodes=2, spec=w.nasty(2, pages))
            h = int(ents[0].content_hashes()[0])
            home = concord.tracing.home_node(h)
            lat.append(concord.num_copies(
                h, issuing_node=(home + 1) % 2).latency)
        assert lat[0] == pytest.approx(lat[1])

    def test_entities_latency_exceeds_num_copies(self, concord4, cluster4):
        h = int(next(iter(cluster4.entities.values())).content_hashes()[0])
        home = concord4.tracing.home_node(h)
        issuing = (home + 1) % cluster4.n_nodes
        assert (concord4.entities(h, issuing_node=issuing).latency
                > concord4.num_copies(h, issuing_node=issuing).latency)


class TestBatchQueries:
    """num_copies_batch / entities_batch must agree with the scalar
    queries, hash by hash, over the columnar bulk lookups."""

    def _probes(self, cluster4):
        hashes = []
        for eid in cluster4.all_entity_ids():
            hashes.extend(cluster4.entity(eid).content_hashes()[:20].tolist())
        hashes.extend([0xDEAD, 0xBEEF])  # unknown hashes -> 0 / empty
        return np.asarray(hashes, dtype=np.uint64)

    def test_num_copies_batch_matches_scalar(self, concord4, cluster4):
        from repro.queries.nodewise import num_copies, num_copies_batch

        probes = self._probes(cluster4)
        ans = num_copies_batch(concord4.tracing, cluster4.cost, probes)
        assert len(ans.value) == len(probes)
        for i, h in enumerate(probes.tolist()):
            assert int(ans.value[i]) == \
                num_copies(concord4.tracing, cluster4.cost, h).value
        assert ans.latency > 0
        assert ans.compute_time > 0

    def test_entities_batch_matches_scalar(self, concord4, cluster4):
        from repro.queries.nodewise import entities, entities_batch

        probes = self._probes(cluster4)
        ans = entities_batch(concord4.tracing, cluster4.cost, probes)
        assert len(ans.value) == len(probes)
        for i, h in enumerate(probes.tolist()):
            assert ans.value[i] == \
                entities(concord4.tracing, cluster4.cost, h).value

    def test_batch_latency_single_rtt_shape(self, concord4, cluster4):
        """A batch is one request per home shard in parallel: its latency
        must be far below the sum of per-hash round trips."""
        from repro.queries.nodewise import num_copies, num_copies_batch

        probes = self._probes(cluster4)
        ans = num_copies_batch(concord4.tracing, cluster4.cost, probes,
                               issuing_node=1)
        scalar_total = sum(
            num_copies(concord4.tracing, cluster4.cost, h,
                       issuing_node=1).latency
            for h in probes.tolist())
        assert ans.latency < scalar_total / 4
