"""Unit tests for collective queries (sharing metrics, k-copy queries, Fig 9)."""

import numpy as np
import pytest

from repro import ExecMode, workloads
from repro.queries.reference import ReferenceModel
from tests.conftest import make_system


class TestSharingValues:
    def test_matches_reference_moldy(self, concord4, cluster4):
        ref = ReferenceModel(cluster4)
        eids = cluster4.all_entity_ids()
        assert concord4.sharing(eids).value == pytest.approx(ref.sharing(eids))
        assert concord4.intra_sharing(eids).value == pytest.approx(
            ref.intra_sharing(eids))
        assert concord4.inter_sharing(eids).value == pytest.approx(
            ref.inter_sharing(eids))

    def test_intra_plus_inter_equals_sharing(self, concord4, cluster4):
        eids = cluster4.all_entity_ids()
        total = concord4.sharing(eids).value
        parts = (concord4.intra_sharing(eids).value
                 + concord4.inter_sharing(eids).value)
        assert parts == pytest.approx(total)

    def test_subset_of_entities(self, concord4, cluster4):
        ref = ReferenceModel(cluster4)
        eids = cluster4.all_entity_ids()[:2]
        assert concord4.sharing(eids).value == pytest.approx(ref.sharing(eids))

    def test_no_redundancy_workload(self):
        _c, ents, concord = make_system(n_nodes=4, spec=workloads.nasty(4, 128))
        eids = [e.entity_id for e in ents]
        assert concord.sharing(eids).value == 0.0
        assert concord.degree_of_sharing(eids).value == 1.0

    def test_full_redundancy_single_page_pool(self):
        spec = workloads.WorkloadSpec(name="all-same", n_entities=4,
                                      pages_per_entity=32, common_frac=1.0,
                                      pool_frac=1 / 32)
        _c, ents, concord = make_system(n_nodes=4, spec=spec)
        eids = [e.entity_id for e in ents]
        # 128 copies of one distinct page
        assert concord.sharing(eids).value == pytest.approx(127 / 128)

    def test_intra_only_when_packed_on_one_node(self):
        spec = workloads.moldy(4, 64, seed=5)
        cluster, ents, concord = make_system(n_nodes=1, spec=spec)
        eids = [e.entity_id for e in ents]
        assert concord.inter_sharing(eids).value == 0.0
        assert concord.intra_sharing(eids).value == pytest.approx(
            concord.sharing(eids).value)

    def test_dos_is_complement_of_sharing(self, concord4, cluster4):
        eids = cluster4.all_entity_ids()
        dos = concord4.degree_of_sharing(eids)
        assert dos.value == pytest.approx(1.0 - concord4.sharing(eids).value)
        assert dos.coverage == 1.0 and not dos.degraded


class TestKCopyQueries:
    def test_num_shared_content_matches_reference(self, concord4, cluster4):
        ref = ReferenceModel(cluster4)
        eids = cluster4.all_entity_ids()
        for k in (1, 2, 3, 4, 8):
            assert concord4.num_shared_content(eids, k).value == \
                ref.num_shared_content(eids, k)

    def test_shared_content_matches_reference(self, concord4, cluster4):
        ref = ReferenceModel(cluster4)
        eids = cluster4.all_entity_ids()
        assert concord4.shared_content(eids, 2).value == \
            ref.shared_content(eids, 2)

    def test_k1_equals_distinct(self, concord4, cluster4):
        ref = ReferenceModel(cluster4)
        eids = cluster4.all_entity_ids()
        assert concord4.num_shared_content(eids, 1).value == \
            len(ref.distinct_content(eids))

    def test_monotone_in_k(self, concord4, cluster4):
        eids = cluster4.all_entity_ids()
        counts = [concord4.num_shared_content(eids, k).value
                  for k in range(1, 6)]
        assert counts == sorted(counts, reverse=True)

    def test_k_validation(self, concord4, cluster4):
        with pytest.raises(ValueError):
            concord4.num_shared_content(cluster4.all_entity_ids(), 0)
        with pytest.raises(ValueError):
            concord4.shared_content(cluster4.all_entity_ids(), -1)


class TestExecutionModes:
    def test_single_and_distributed_agree_on_value(self, concord4, cluster4):
        eids = cluster4.all_entity_ids()
        d = concord4.sharing(eids, exec_mode=ExecMode.DISTRIBUTED)
        s = concord4.sharing(eids, exec_mode=ExecMode.SINGLE)
        assert d.value == s.value

    def test_single_latency_grows_with_total(self):
        """Fig 9: single-node execution is linear in total hashes."""
        lats = []
        for pages in (256, 1024):
            _c, ents, concord = make_system(n_nodes=4,
                                            spec=workloads.nasty(4, pages))
            lats.append(concord.sharing(
                [e.entity_id for e in ents], exec_mode=ExecMode.SINGLE).latency)
        assert lats[1] > 2.5 * lats[0]

    def test_distributed_flat_when_per_node_constant(self):
        """Fig 9: distributed latency ~constant when hashes/node is fixed."""
        lats = []
        for n_nodes in (2, 8):
            _c, ents, concord = make_system(
                n_nodes=n_nodes, spec=workloads.nasty(n_nodes, 512))
            lats.append(concord.sharing(
                [e.entity_id for e in ents], exec_mode=ExecMode.DISTRIBUTED).latency)
        assert lats[1] < 1.5 * lats[0]

    def test_distributed_beats_single_at_scale(self):
        _c, ents, concord = make_system(n_nodes=8,
                                        spec=workloads.nasty(8, 2048))
        eids = [e.entity_id for e in ents]
        assert concord.sharing(eids, exec_mode=ExecMode.DISTRIBUTED).latency < \
            concord.sharing(eids, exec_mode=ExecMode.SINGLE).latency

    def test_unknown_mode_rejected(self, concord4, cluster4):
        with pytest.raises(ValueError):
            concord4.sharing(cluster4.all_entity_ids(), exec_mode="magic")

    def test_command_mode_rejected_for_queries(self, concord4, cluster4):
        with pytest.raises(ValueError):
            concord4.sharing(cluster4.all_entity_ids(),
                             exec_mode=ExecMode.INTERACTIVE)

    def test_string_mode_is_hard_error_naming_member(self, concord4,
                                                     cluster4):
        # The PR 2 string shim finished its deprecation cycle: a member
        # string now raises TypeError telling the caller which enum
        # member to pass instead.
        eids = cluster4.all_entity_ids()
        with pytest.raises(TypeError, match=r"ExecMode\.SINGLE"):
            concord4.sharing(eids, exec_mode="single")


class TestStalenessBestEffort:
    def test_stale_view_yields_best_effort_answers(self):
        """After unsynced mutations the answers reflect the old view —
        best-effort, exactly as the paper specifies."""
        cluster, ents, concord = make_system(n_nodes=4)
        eids = [e.entity_id for e in ents]
        before = concord.sharing(eids).value
        rng = np.random.default_rng(0)
        for e in ents:
            e.mutate_random(0.5, rng)
        assert concord.sharing(eids).value == before  # unchanged view
        concord.sync()
        ref = ReferenceModel(cluster)
        assert concord.sharing(eids).value == pytest.approx(ref.sharing(eids))
