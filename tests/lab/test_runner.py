"""Integration tests: lab cells end-to-end, reports, the CLI gate.

These run real cells — traffic, faults, autoscale, repair — so they are
the lab's own tier-1 regression net.  Cells here are kept tiny (3
nodes, ~30 ms of simulated traffic) to stay fast.
"""

import json

import pytest

from repro.cli import main
from repro.lab import (
    LabCell,
    build_report,
    default_slos,
    quick_grid,
    render_markdown,
    run_cell,
    write_report,
)
from repro.lab.report import report_json


def tiny(workload="moldy", fault="none", scale="static",
         storage="memory", placement="mod", **kw):
    kw.setdefault("n_nodes", 3)
    kw.setdefault("duration_s", 0.03)
    return LabCell(workload, fault, scale, storage, placement, **kw)


class TestRunCell:
    def test_clean_cell_passes_every_slo(self):
        res = run_cell(tiny(), trace=False)
        assert res.passed
        assert res.final["serve.completed"] >= 1
        assert res.final["coverage"] == 1.0
        assert res.final["answers.match_reference"] == 1.0
        assert len(res.series) >= 10

    def test_churn_cell_recovers_to_full_coverage(self):
        res = run_cell(tiny(fault="churn"), trace=False)
        assert res.passed
        assert res.final["coverage"] == 1.0
        # coverage dipped while the victim was down
        assert min(res.series.values("coverage")) < 1.0

    def test_autoscale_cell_joins_a_node(self):
        res = run_cell(tiny(scale="autoscale"), trace=False)
        assert res.passed
        assert res.final["ring.n_nodes"] == 4.0
        assert res.series.values("ring.n_nodes")[0] == 3.0

    def test_injected_violation_fails_with_window(self):
        res = run_cell(tiny(), inject_violation=True, trace=False)
        assert not res.passed
        bad = [r for r in res.failures
               if r.slo.metric == "serve.cache.violations"]
        assert bad, "the seeded corruption must trip the verify SLO"
        assert bad[0].t0 is not None and bad[0].t1 is not None
        assert bad[0].t1 <= res.series.times[-1]

    def test_trace_artifact_recorded_when_tracing(self):
        res = run_cell(tiny(), trace=True)
        assert res.trace is not None
        assert res.trace.get("traceEvents")

    def test_default_slos_match_cell_shape(self):
        static = [s.expr for s in default_slos(tiny())]
        assert any("answers.match_reference" in e for e in static)
        scaled = [s.expr for s in default_slos(tiny(scale="autoscale",
                                                    fault="churn"))]
        assert any("ring.n_nodes" in e for e in scaled)
        assert not any("answers.match_reference" in e for e in scaled)


class TestDeterminism:
    def test_composed_cell_same_seed_byte_identical(self):
        """The satellite determinism pin: a cell composing traffic,
        faults, update bursts, AND an autoscaled join replays byte-
        identically from the same seed."""
        cell = tiny(fault="churn", scale="autoscale", n_nodes=4,
                    duration_s=0.04)

        def once():
            res = run_cell(cell, trace=False)
            return (res.series.to_jsonl(),
                    report_json(build_report("g", 0, [res])))

        s1, r1 = once()
        s2, r2 = once()
        assert s1 == s2
        assert r1 == r2

    def test_different_base_seed_different_series(self):
        a = run_cell(tiny(), trace=False).series.to_jsonl()
        b = run_cell(tiny(base_seed=1), trace=False).series.to_jsonl()
        assert a != b


class TestReport:
    def test_report_doc_shape(self):
        results = [run_cell(tiny(), trace=False)]
        doc = build_report("quick", 0, results)
        assert doc["n_cells"] == 1 and doc["n_passed"] == 1
        cell = doc["cells"][0]
        assert cell["id"] == "moldy-none-static-memory-mod"
        assert cell["passed"] is True
        assert all("expr" in s and "ok" in s for s in cell["slos"])
        json.dumps(doc)  # JSON-ready

    def test_write_report_artifacts_only_for_failures(self, tmp_path):
        good = run_cell(tiny(), trace=False)
        bad = run_cell(tiny(workload="zipf"), inject_violation=True,
                       trace=True)
        json_path, md_path = write_report(tmp_path, "quick", 0,
                                          [good, bad])
        assert json_path.exists() and md_path.exists()
        cells = tmp_path / "cells"
        assert not (cells / good.cell.cell_id).exists()
        bad_dir = cells / bad.cell.cell_id
        assert (bad_dir / "metrics.jsonl").exists()
        assert (bad_dir / "trace.json").exists()

        md = md_path.read_text()
        assert "FAIL" in md and "offending window" in md
        assert bad.cell.cell_id in md
        doc = json.loads(json_path.read_text())
        assert doc["n_failed"] == 1

    def test_markdown_all_green_has_no_fail_sections(self):
        res = run_cell(tiny(), trace=False)
        doc = build_report("quick", 0, [res])
        md = render_markdown(doc, {})
        assert "## FAIL" not in md
        assert "1/1 cells passed" in md

    def test_failing_faulted_cell_names_divergent_nodes(self):
        """Triage must say WHICH shards the post-run repair had to
        touch, not just how many ops it applied."""
        res = run_cell(tiny(fault="churn", duration_s=0.04),
                       inject_violation=True, trace=False)
        assert not res.passed
        assert "repair.ops" in res.final
        doc = build_report("quick", 0, [res])
        assert doc["cells"][0]["repair_nodes"] == [
            list(t) for t in res.repair_nodes]
        if res.repair_nodes:
            md = render_markdown(doc, {})
            n = res.repair_nodes[0][0]
            assert f"Post-run repair touched: node {n}" in md


class TestLabCLI:
    def test_filtered_quick_grid_exits_zero(self, tmp_path, capsys):
        rc = main(["lab", "--grid", "quick",
                   "--filter", "moldy,none,static",
                   "--report", str(tmp_path / "rep")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK: all 2 cell(s) within SLO" in out
        assert (tmp_path / "rep" / "lab_report.json").exists()
        assert (tmp_path / "rep" / "LAB_REPORT.md").exists()

    def test_injected_violation_exits_one_with_artifacts(self, tmp_path,
                                                         capsys):
        rc = main(["lab", "--grid", "quick",
                   "--filter", "moldy,none,static,memory",
                   "--inject-violation", "first",
                   "--report", str(tmp_path / "rep")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out
        md = (tmp_path / "rep" / "LAB_REPORT.md").read_text()
        assert "offending window" in md
        cell_dir = (tmp_path / "rep" / "cells"
                    / "moldy-none-static-memory-mod")
        assert (cell_dir / "metrics.jsonl").exists()

    def test_list_prints_cells_without_running(self, tmp_path, capsys):
        rc = main(["lab", "--grid", "full", "--list",
                   "--report", str(tmp_path / "rep")])
        out = capsys.readouterr().out
        assert rc == 0
        assert len(out.strip().splitlines()) == 64
        assert not (tmp_path / "rep").exists()

    def test_bad_filter_exits_two(self, capsys):
        rc = main(["lab", "--filter", "nonexistent-axis"])
        assert rc == 2

    def test_bad_inject_target_exits_two(self, capsys):
        rc = main(["lab", "--filter", "moldy,none",
                   "--inject-violation", "not-a-cell"])
        assert rc == 2

    def test_report_json_deterministic_across_runs(self, tmp_path):
        p1, p2 = tmp_path / "a", tmp_path / "b"
        for p in (p1, p2):
            rc = main(["lab", "--grid", "quick",
                       "--filter", "zipf,churn,static",
                       "--report", str(p)])
            assert rc == 0
        assert (p1 / "lab_report.json").read_bytes() == \
            (p2 / "lab_report.json").read_bytes()


class TestGridSmoke:
    @pytest.mark.parametrize("fault", ["partition", "zonal"])
    def test_full_grid_fault_schedules_pass(self, fault):
        res = run_cell(tiny(fault=fault, n_nodes=4), trace=False)
        assert res.passed, [r.describe() for r in res.failures]

    def test_quick_grid_cells_all_have_slos(self):
        for cell in quick_grid(0).cells:
            assert len(default_slos(cell)) >= 4
