"""Unit tests for SLO parsing and evaluation."""

import pytest

from repro.lab import SLO
from repro.obs import SampleSeries


def series_of(col, values, period=0.01):
    s = SampleSeries([col])
    for i, v in enumerate(values):
        s.append(i * period, {col: float(v)})
    return s


class TestParse:
    def test_basic_final(self):
        slo = SLO.parse("coverage == 1.0")
        assert (slo.metric, slo.op, slo.bound) == ("coverage", "==", 1.0)
        assert slo.mode == "final"
        assert slo.after_s == 0.0

    def test_series_mode_and_after(self):
        slo = SLO.parse("serve.p95_interactive <= 0.05 @series after 0.01")
        assert slo.mode == "series"
        assert slo.after_s == 0.01

    def test_expr_roundtrips(self):
        for text in ("coverage == 1 @final",
                     "serve.cache.violations == 0 @series",
                     "x >= 2 @series after 0.5"):
            assert SLO.parse(SLO.parse(text).expr).expr == \
                SLO.parse(text).expr

    def test_all_operators(self):
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            assert SLO.parse(f"m {op} 1").op == op

    def test_malformed_rejected(self):
        for bad in ("coverage", "coverage ==", "coverage ~ 1",
                    "coverage == one", "coverage == 1 @sometimes",
                    "coverage == 1 after", "coverage == 1 banana"):
            with pytest.raises(ValueError):
                SLO.parse(bad)


class TestEvaluate:
    def test_final_pass_and_fail(self):
        s = series_of("coverage", [1.0, 0.5, 1.0])
        ok = SLO.parse("coverage == 1.0 @final").evaluate(s, {})
        assert ok.ok and ok.observed == 1.0
        bad = SLO.parse("coverage >= 2 @final").evaluate(s, {})
        assert not bad.ok

    def test_final_prefers_snapshot_over_series(self):
        s = series_of("coverage", [0.5])
        res = SLO.parse("coverage == 1.0 @final").evaluate(
            s, {"coverage": 1.0})
        assert res.ok  # snapshot (post-repair) wins over last tick

    def test_series_reports_offending_window(self):
        s = series_of("v", [0.0, 0.0, 3.0, 0.0], period=0.01)
        res = SLO.parse("v == 0 @series").evaluate(s, {})
        assert not res.ok
        assert res.observed == 3.0
        assert (res.t0, res.t1) == (0.01, 0.02)
        assert "0.01" in res.window and "0.02" in res.window

    def test_series_after_skips_warmup(self):
        s = series_of("v", [9.0, 9.0, 0.0, 0.0], period=0.01)
        hot = SLO.parse("v == 0 @series").evaluate(s, {})
        assert not hot.ok
        warm = SLO.parse("v == 0 @series after 0.02").evaluate(s, {})
        assert warm.ok

    def test_missing_metric_reads_zero(self):
        s = series_of("v", [1.0])
        res = SLO.parse("ghost == 0 @final").evaluate(s, {})
        assert res.ok and res.observed == 0.0
        res = SLO.parse("ghost >= 1 @final").evaluate(s, {})
        assert not res.ok

    def test_series_slo_without_column_falls_back_to_final(self):
        s = series_of("v", [1.0])
        res = SLO.parse("answers.match_reference == 1 @series").evaluate(
            s, {"answers.match_reference": 1.0})
        assert res.ok

    def test_describe_mentions_verdict(self):
        s = series_of("v", [2.0])
        res = SLO.parse("v == 0 @series").evaluate(s, {})
        text = res.describe()
        assert text.startswith("FAIL") and "v == 0 @series" in text
