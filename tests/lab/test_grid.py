"""Unit tests for the lab grid: cells, derived seeds, filtering."""

import pytest

from repro.lab import (
    BACKENDS,
    FAULTS,
    LabCell,
    SCALES,
    WORKLOADS,
    derive_seed,
    filter_cells,
    full_grid,
    quick_grid,
)


class TestLabCell:
    def test_cell_id_is_the_axes(self):
        c = LabCell("moldy", "churn", "static", "memory", "mod")
        assert c.cell_id == "moldy-churn-static-memory-mod"
        assert c.axes == {"workload": "moldy", "fault": "churn",
                          "scale": "static", "storage": "memory",
                          "placement": "mod"}

    def test_invalid_axes_rejected(self):
        with pytest.raises(ValueError):
            LabCell("bogus", "none", "static", "memory", "mod")
        with pytest.raises(ValueError):
            LabCell("moldy", "bogus", "static", "memory", "mod")
        with pytest.raises(ValueError):
            LabCell("moldy", "none", "bogus", "memory", "mod")
        with pytest.raises(ValueError):
            LabCell("moldy", "none", "static", "memory", "mod", n_nodes=1)

    def test_seed_derived_from_base_and_id(self):
        a = LabCell("moldy", "none", "static", "memory", "mod")
        b = a.replace(base_seed=1)
        c = a.replace(fault="churn")
        assert a.seed == derive_seed(0, a.cell_id)
        assert a.seed != b.seed
        assert a.seed != c.seed

    def test_derive_seed_stable_and_16bit(self):
        s = derive_seed(0, "moldy-none-static-memory-mod")
        assert s == derive_seed(0, "moldy-none-static-memory-mod")
        assert 0 <= s < 1 << 16


class TestGrids:
    def test_quick_grid_is_16_cells(self):
        g = quick_grid(0)
        assert len(g) == 16
        assert len({c.cell_id for c in g.cells}) == 16

    def test_full_grid_is_the_full_cross(self):
        g = full_grid(0)
        expected = (len(WORKLOADS) * len(FAULTS) * len(SCALES)
                    * len(BACKENDS))
        assert len(g) == expected == 64

    def test_quick_is_a_subset_of_full_axes(self):
        quick_ids = {c.axes.values() for c in quick_grid(0).cells}
        assert quick_ids  # every quick axis value is a legal full value
        for c in quick_grid(0).cells:
            assert c.workload in WORKLOADS
            assert c.fault in FAULTS

    def test_grid_seeds_distinct_per_cell(self):
        g = quick_grid(0)
        seeds = [c.seed for c in g.cells]
        assert len(set(seeds)) == len(seeds)

    def test_base_seed_changes_every_cell_seed(self):
        a = {c.cell_id: c.seed for c in quick_grid(0).cells}
        b = {c.cell_id: c.seed for c in quick_grid(1).cells}
        assert all(a[k] != b[k] for k in a)

    def test_cell_lookup(self):
        g = quick_grid(0)
        c = g.cell("moldy-none-static-memory-mod")
        assert c.workload == "moldy"
        with pytest.raises(KeyError):
            g.cell("nope")


class TestFilter:
    def test_terms_are_anded(self):
        cells = quick_grid(0).cells
        got = filter_cells(cells, "moldy,churn")
        assert got
        assert all("moldy" in c.cell_id and "churn" in c.cell_id
                   for c in got)

    def test_empty_filter_keeps_all(self):
        cells = quick_grid(0).cells
        assert filter_cells(cells, None) == list(cells)
        assert filter_cells(cells, "  ") == list(cells)

    def test_filtered_spec_preserves_name_and_seed(self):
        g = quick_grid(7).filtered("zipf")
        assert g.name == "quick"
        assert g.base_seed == 7
        assert all("zipf" in c.cell_id for c in g.cells)
