"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Resource, SimEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = SimEngine()
        fired = []
        eng.at(2.0, fired.append, "b")
        eng.at(1.0, fired.append, "a")
        eng.at(3.0, fired.append, "c")
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        eng = SimEngine()
        fired = []
        for tag in "abc":
            eng.at(1.0, fired.append, tag)
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_after_relative(self):
        eng = SimEngine()
        times = []
        eng.after(0.5, lambda: times.append(eng.now))
        eng.run()
        assert times == [0.5]

    def test_nested_scheduling(self):
        eng = SimEngine()
        log = []

        def outer():
            log.append(("outer", eng.now))
            eng.after(1.0, inner)

        def inner():
            log.append(("inner", eng.now))

        eng.after(1.0, outer)
        eng.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_past_scheduling_rejected(self):
        eng = SimEngine()
        eng.at(5.0, lambda: eng.at(1.0, lambda: None))
        with pytest.raises(ValueError):
            eng.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimEngine().after(-1.0, lambda: None)

    def test_run_until_stops_and_advances_clock(self):
        eng = SimEngine()
        fired = []
        eng.at(1.0, fired.append, 1)
        eng.at(10.0, fired.append, 2)
        eng.run(until=5.0)
        assert fired == [1]
        assert eng.now == 5.0
        eng.run()
        assert fired == [1, 2]

    def test_cancel(self):
        eng = SimEngine()
        fired = []
        ev = eng.at(1.0, fired.append, "x")
        eng.cancel(ev)
        eng.run()
        assert fired == []
        assert eng.pending() == 0

    def test_max_events(self):
        eng = SimEngine()
        fired = []
        for i in range(5):
            eng.at(float(i), fired.append, i)
        eng.run(max_events=2)
        assert fired == [0, 1]

    def test_events_run_counter(self):
        eng = SimEngine()
        eng.at(0.0, lambda: None)
        eng.at(1.0, lambda: None)
        eng.run()
        assert eng.events_run == 2

    def test_determinism(self):
        def build():
            eng = SimEngine()
            out = []
            for i in range(100):
                eng.at((i * 37) % 10 / 10.0, out.append, i)
            eng.run()
            return out

        assert build() == build()


class TestResource:
    def test_idle_starts_immediately(self):
        r = Resource()
        assert r.submit(now=1.0, duration=2.0) == 3.0

    def test_fifo_queueing(self):
        r = Resource()
        r.submit(0.0, 2.0)
        assert r.submit(1.0, 1.0) == 3.0  # waits behind the first job

    def test_gap_resets(self):
        r = Resource()
        r.submit(0.0, 1.0)
        assert r.submit(5.0, 1.0) == 6.0

    def test_backlog(self):
        r = Resource()
        r.submit(0.0, 4.0)
        assert r.backlog(1.0) == 3.0
        assert r.backlog(10.0) == 0.0

    def test_total_busy_accumulates(self):
        r = Resource()
        r.submit(0.0, 1.0)
        r.submit(0.0, 2.0)
        assert r.total_busy == 3.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Resource().submit(0.0, -1.0)

    def test_reset(self):
        r = Resource()
        r.submit(0.0, 1.0)
        r.reset()
        assert r.busy_until == 0.0 and r.total_busy == 0.0
