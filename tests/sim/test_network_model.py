"""Unit tests for the receive-side service model (packet rate vs bytes)."""

import pytest

from repro.sim.costmodel import NEW_CLUSTER
from repro.sim.engine import SimEngine
from repro.sim.network import Network
from repro.util.records import Message, MsgKind, UpdateBatch


def make(cost=NEW_CLUSTER, n=2):
    eng = SimEngine()
    return eng, Network(eng, cost, n)


class TestRxService:
    def test_small_packet_dominated_by_per_msg_cost(self):
        _e, net = make()
        m = Message(MsgKind.UPDATE, 0, 1)
        assert net._rx_service(m, m.wire_bytes()) == NEW_CLUSTER.rx_per_msg

    def test_large_message_dominated_by_bytes(self):
        _e, net = make()
        m = Message(MsgKind.UPDATE, 0, 1)
        big = 10 * 1024 * 1024
        assert net._rx_service(m, big) == pytest.approx(
            big / NEW_CLUSTER.link_bw)

    def test_coarse_grained_message_costs_per_represented_packet(self):
        _e, net = make()
        m = UpdateBatch(MsgKind.UPDATE, 0, 1, inserts=[(1, 0)],
                        n_represented=100)
        assert net._rx_service(m, m.wire_bytes()) == pytest.approx(
            100 * NEW_CLUSTER.rx_per_msg)

    def test_one_sided_skips_packet_cost(self):
        _e, net = make()
        m = UpdateBatch(MsgKind.UPDATE, 0, 1, inserts=[(1, 0)],
                        n_represented=100, one_sided=True)
        assert net._rx_service(m, m.wire_bytes()) == pytest.approx(
            m.wire_bytes() / NEW_CLUSTER.link_bw)

    def test_n_packets_floor_is_one(self):
        _e, net = make()
        m = Message(MsgKind.ACK, 0, 1)
        assert net._n_packets(m) == 1


class TestTransportValidation:
    def test_engine_rejects_unknown_transport(self):
        from repro.dht.engine import ContentTracingEngine
        from repro.sim.cluster import Cluster

        with pytest.raises(ValueError):
            ContentTracingEngine(Cluster(2), transport="carrier-pigeon")

    def test_concord_threads_transport(self):
        from repro import Cluster, ConCORD, ConCORDConfig

        c = ConCORD(Cluster(2), ConCORDConfig(update_transport="rdma"))
        assert c.tracing.transport == "rdma"

    def test_rdma_batches_marked_one_sided(self):
        from repro import Cluster, ConCORD, ConCORDConfig

        cluster = Cluster(2, seed=0)
        import numpy as np

        from repro import Entity

        Entity.create(cluster, 0, np.arange(4, dtype=np.uint64))
        concord = ConCORD(cluster, ConCORDConfig(use_network=True,
                                                 update_transport="rdma"))
        seen = []
        orig_send = cluster.network.send

        def spy(msg, *a, **kw):
            seen.append(msg.one_sided)
            return orig_send(msg, *a, **kw)

        cluster.network.send = spy
        concord.initial_scan()
        assert seen and all(seen)


class TestPacingIsObservable:
    def test_paced_updates_arrive_spread_over_scan_time(self):
        """With a production duration, update batches depart staggered
        rather than all at t=0."""
        from repro.dht.engine import ContentTracingEngine
        from repro.sim.cluster import Cluster

        cluster = Cluster(2, seed=0)
        eng = ContentTracingEngine(cluster, use_network=True, batch_size=8)
        times = []
        orig = cluster.network.send

        def spy(msg, *a, **kw):
            times.append(cluster.engine.now)
            return orig(msg, *a, **kw)

        cluster.network.send = spy
        eng.route_updates(0, [(h, 0) for h in range(64)], [], duration=1.0)
        cluster.engine.run()
        assert len(times) >= 8
        assert max(times) - min(times) > 0.5
        assert max(times) <= 1.0
