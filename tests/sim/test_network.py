"""Unit tests for the simulated network."""

import pytest

from repro.sim.costmodel import NEW_CLUSTER
from repro.sim.engine import SimEngine
from repro.sim.network import Network
from repro.util.records import ControlMessage, Message, MsgKind, UpdateBatch


def make_net(n=4, cost=NEW_CLUSTER):
    eng = SimEngine()
    return eng, Network(eng, cost, n)


def msg(src, dst, kind=MsgKind.UPDATE):
    return Message(kind, src, dst)


class TestUnreliable:
    def test_delivery(self):
        eng, net = make_net()
        got = []
        net.send(msg(0, 1), on_deliver=lambda m: got.append(m))
        eng.run()
        assert len(got) == 1
        assert net.stats.msgs_delivered == 1
        assert net.stats.msgs_dropped == 0

    def test_latency_positive(self):
        eng, net = make_net()
        times = []
        net.send(msg(0, 1), on_deliver=lambda m: times.append(eng.now))
        eng.run()
        assert times[0] > NEW_CLUSTER.udp_latency

    def test_loopback_is_instant_and_lossless(self):
        eng, net = make_net()
        got = []
        for _ in range(1000):
            net.send(msg(2, 2), on_deliver=lambda m: got.append(1))
        eng.run()
        assert len(got) == 1000
        assert net.nodes[2].tx_bytes > 0  # counted as sent

    def test_invalid_node_rejected(self):
        _eng, net = make_net(2)
        with pytest.raises(ValueError):
            net.send(msg(0, 5))

    def test_byte_counters(self):
        eng, net = make_net()
        m = msg(0, 1)
        net.send(m)
        eng.run()
        assert net.nodes[0].tx_bytes == m.wire_bytes()
        assert net.nodes[1].rx_bytes == m.wire_bytes()
        assert net.per_node_tx_bytes()[0] == m.wire_bytes()

    def test_overload_drops(self):
        """Blasting one receiver far beyond its queue drops datagrams."""
        eng, net = make_net(4)
        big = [UpdateBatch(MsgKind.UPDATE, src, 3,
                           inserts=[(i, 0) for i in range(64)])
               for src in (0, 1, 2) for _ in range(600)]
        for m in big:
            net.send(m)
        eng.run()
        assert net.stats.msgs_dropped > 0
        assert net.stats.update_loss_rate > 0
        assert (net.stats.msgs_delivered + net.stats.msgs_dropped
                == net.stats.msgs_sent)

    def test_on_drop_callback(self):
        eng, net = make_net(4)
        dropped = []
        for src in (0, 1, 2):
            for _ in range(600):
                net.send(UpdateBatch(MsgKind.UPDATE, src, 3,
                                     inserts=[(1, 0)] * 64),
                         on_drop=lambda m: dropped.append(m))
        eng.run()
        assert len(dropped) == net.stats.msgs_dropped

    def test_light_load_no_loss(self):
        eng, net = make_net(4)
        for i in range(50):
            net.send(msg(0, 1))
        eng.run()
        assert net.stats.msgs_dropped == 0


class TestReliable:
    def test_delivery(self):
        eng, net = make_net()
        got = []
        net.send_reliable(msg(0, 1), on_deliver=lambda m: got.append(m))
        eng.run()
        assert len(got) == 1

    def test_retransmits_until_delivered(self):
        """Saturate the receiver with junk, then check the reliable message
        still arrives (after retransmissions)."""
        eng, net = make_net(4)
        for src in (0, 1, 2):
            for _ in range(400):
                net.send(UpdateBatch(MsgKind.UPDATE, src, 3,
                                     inserts=[(1, 0)] * 64))
        got = []
        net.send_reliable(ControlMessage(MsgKind.CONTROL, 0, 3, op="start"),
                          on_deliver=lambda m: got.append(m))
        eng.run()
        assert len(got) == 1

    def test_broadcast_reliable(self):
        eng, net = make_net(4)
        got = []
        msgs = [ControlMessage(MsgKind.CONTROL, 0, d, op="go")
                for d in range(1, 4)]
        net.broadcast_reliable(msgs, on_deliver=lambda m: got.append(m.dst_node))
        eng.run()
        assert sorted(got) == [1, 2, 3]

    def test_reset_stats(self):
        eng, net = make_net()
        net.send(msg(0, 1))
        eng.run()
        net.reset_stats()
        assert net.stats.msgs_sent == 0
        assert net.nodes[0].tx_bytes == 0


class TestStats:
    def test_loss_rate_zero_when_idle(self):
        _eng, net = make_net()
        assert net.stats.loss_rate == 0.0
        assert net.stats.update_loss_rate == 0.0

    def test_loss_rates_zero_after_reset(self):
        """Zero-traffic guards hold in a *reset* window too, where the
        counters exist but are zero."""
        eng, net = make_net()
        net.send(msg(0, 1))
        eng.run()
        net.reset_stats()
        assert net.stats.loss_rate == 0.0
        assert net.stats.update_loss_rate == 0.0
        assert net.per_node_tx_bytes() == [0] * 4
        assert net.per_node_rx_bytes() == [0] * 4

    def test_stats_reference_survives_reset(self):
        """A held NetworkStats must keep reading the live window after
        reset_stats (it used to go stale when the object was replaced)."""
        eng, net = make_net()
        stats = net.stats
        net.send(msg(0, 1))
        eng.run()
        assert stats.msgs_sent == 1
        net.reset_stats()
        assert stats.msgs_sent == 0
        assert net.stats is stats
        net.send(msg(0, 1))
        eng.run()
        assert stats.msgs_sent == 1
        assert stats.msgs_delivered == 1

    def test_drop_reasons_labelled(self):
        eng, net = make_net()
        net.set_node_up(2, False)
        net.send(msg(0, 2))              # dead receiver -> blackhole
        net.send(msg(2, 0))              # dead sender -> sender-down
        net.set_loss(1.0)
        net.send(msg(0, 1))              # injected loss
        eng.run()
        by_reason = net.stats.dropped_by_reason()
        assert by_reason["blackhole"] == 1
        assert by_reason["sender-down"] == 1
        assert by_reason["injected"] == 1
        assert net.stats.msgs_dropped == 3
        assert net.stats.msgs_blackholed == 2  # both dead-node reasons

    def test_dead_sender_drop_charged_to_sender(self):
        """Bugfix: a dead sender's vanished datagram is the *sender's*
        drop, not the healthy receiver's."""
        eng, net = make_net()
        net.set_node_up(2, False)
        net.send(msg(2, 0))
        eng.run()
        assert net.nodes[2].drops == 1
        assert net.nodes[0].drops == 0

    def test_dead_receiver_drop_charged_to_receiver(self):
        eng, net = make_net()
        net.set_node_up(2, False)
        net.send(msg(0, 2))
        eng.run()
        assert net.nodes[2].drops == 1
        assert net.nodes[0].drops == 0

    def test_as_dict_round_trip(self):
        eng, net = make_net()
        net.send(msg(0, 1))
        eng.run()
        d = net.stats.as_dict()
        assert d["msgs_sent"] == 1 and d["msgs_delivered"] == 1
        assert d["loss_rate"] == 0.0

    def test_use_registry_migrates_counts(self):
        from repro.obs import MetricsRegistry

        eng, net = make_net()
        net.send(msg(0, 1))
        eng.run()
        assert net.stats.msgs_sent == 1
        shared = MetricsRegistry()
        shared.histogram("other.h").observe(1.0)  # foreign metric survives
        net.use_registry(shared)
        assert net.registry is shared
        assert net.stats.msgs_sent == 1
        assert shared.value("net.msgs_sent") == 1
        net.send(msg(0, 1))
        eng.run()
        assert shared.value("net.msgs_sent") == 2


class TestMeasurementWindows:
    """reset_stats() must also drain NIC backlogs (the default), so
    back-to-back measurement windows on a loaded network are independent."""

    @staticmethod
    def _flood(net, n_per_src=400):
        for src in (0, 1, 2):
            for _ in range(n_per_src):
                net.send(UpdateBatch(MsgKind.UPDATE, src, 3,
                                     inserts=[(1, 0)] * 64))

    def test_reset_drains_backlogs(self):
        eng, net = make_net(4)
        for n in net.nodes:
            n.rx.submit(eng.now, 0.0025)
            n.tx.submit(eng.now, 0.0025)
        net.reset_stats()
        assert all(n.rx.backlog(eng.now) == 0.0 and n.tx.backlog(eng.now) == 0.0
                   for n in net.nodes)

    def test_windows_independent(self):
        # Reference: the flood on a completely fresh network.
        eng0, net0 = make_net(4)
        self._flood(net0)
        eng0.run()
        ref_drops = net0.stats.msgs_dropped
        assert ref_drops > 0

        # Same flood measured right after a window that left the target's
        # receive queue nearly full.  After reset_stats() the measurement
        # must match the fresh network exactly.
        eng, net = make_net(4)
        net.nodes[3].rx.submit(eng.now, 0.0025)
        net.reset_stats()
        self._flood(net)
        eng.run()
        assert net.stats.msgs_dropped == ref_drops
        assert net.stats.msgs_delivered == net0.stats.msgs_delivered

    def test_drain_false_keeps_backlog(self):
        # Opting out preserves the old mid-flight counter-only semantics:
        # the inherited backlog inflates the second window's loss.
        eng0, net0 = make_net(4)
        self._flood(net0)
        eng0.run()
        ref_drops = net0.stats.msgs_dropped

        eng, net = make_net(4)
        net.nodes[3].rx.submit(eng.now, 0.0025)
        net.reset_stats(drain=False)
        assert net.nodes[3].rx.backlog(eng.now) > 0
        self._flood(net)
        eng.run()
        assert net.stats.msgs_dropped > ref_drops
