"""Unit tests for the simulated network."""

import pytest

from repro.sim.costmodel import NEW_CLUSTER
from repro.sim.engine import SimEngine
from repro.sim.network import DeliveryError, Network
from repro.util.records import ControlMessage, Message, MsgKind, UpdateBatch


def make_net(n=4, cost=NEW_CLUSTER):
    eng = SimEngine()
    return eng, Network(eng, cost, n)


def msg(src, dst, kind=MsgKind.UPDATE):
    return Message(kind, src, dst)


class TestUnreliable:
    def test_delivery(self):
        eng, net = make_net()
        got = []
        net.send(msg(0, 1), on_deliver=lambda m: got.append(m))
        eng.run()
        assert len(got) == 1
        assert net.stats.msgs_delivered == 1
        assert net.stats.msgs_dropped == 0

    def test_latency_positive(self):
        eng, net = make_net()
        times = []
        net.send(msg(0, 1), on_deliver=lambda m: times.append(eng.now))
        eng.run()
        assert times[0] > NEW_CLUSTER.udp_latency

    def test_loopback_is_instant_and_lossless(self):
        eng, net = make_net()
        got = []
        for _ in range(1000):
            net.send(msg(2, 2), on_deliver=lambda m: got.append(1))
        eng.run()
        assert len(got) == 1000
        assert net.nodes[2].tx_bytes > 0  # counted as sent

    def test_invalid_node_rejected(self):
        _eng, net = make_net(2)
        with pytest.raises(ValueError):
            net.send(msg(0, 5))

    def test_byte_counters(self):
        eng, net = make_net()
        m = msg(0, 1)
        net.send(m)
        eng.run()
        assert net.nodes[0].tx_bytes == m.wire_bytes()
        assert net.nodes[1].rx_bytes == m.wire_bytes()
        assert net.per_node_tx_bytes()[0] == m.wire_bytes()

    def test_overload_drops(self):
        """Blasting one receiver far beyond its queue drops datagrams."""
        eng, net = make_net(4)
        big = [UpdateBatch(MsgKind.UPDATE, src, 3,
                           inserts=[(i, 0) for i in range(64)])
               for src in (0, 1, 2) for _ in range(600)]
        for m in big:
            net.send(m)
        eng.run()
        assert net.stats.msgs_dropped > 0
        assert net.stats.update_loss_rate > 0
        assert (net.stats.msgs_delivered + net.stats.msgs_dropped
                == net.stats.msgs_sent)

    def test_on_drop_callback(self):
        eng, net = make_net(4)
        dropped = []
        for src in (0, 1, 2):
            for _ in range(600):
                net.send(UpdateBatch(MsgKind.UPDATE, src, 3,
                                     inserts=[(1, 0)] * 64),
                         on_drop=lambda m: dropped.append(m))
        eng.run()
        assert len(dropped) == net.stats.msgs_dropped

    def test_light_load_no_loss(self):
        eng, net = make_net(4)
        for i in range(50):
            net.send(msg(0, 1))
        eng.run()
        assert net.stats.msgs_dropped == 0


class TestReliable:
    def test_delivery(self):
        eng, net = make_net()
        got = []
        net.send_reliable(msg(0, 1), on_deliver=lambda m: got.append(m))
        eng.run()
        assert len(got) == 1

    def test_retransmits_until_delivered(self):
        """Saturate the receiver with junk, then check the reliable message
        still arrives (after retransmissions)."""
        eng, net = make_net(4)
        for src in (0, 1, 2):
            for _ in range(400):
                net.send(UpdateBatch(MsgKind.UPDATE, src, 3,
                                     inserts=[(1, 0)] * 64))
        got = []
        net.send_reliable(ControlMessage(MsgKind.CONTROL, 0, 3, op="start"),
                          on_deliver=lambda m: got.append(m))
        eng.run()
        assert len(got) == 1

    def test_broadcast_reliable(self):
        eng, net = make_net(4)
        got = []
        msgs = [ControlMessage(MsgKind.CONTROL, 0, d, op="go")
                for d in range(1, 4)]
        net.broadcast_reliable(msgs, on_deliver=lambda m: got.append(m.dst_node))
        eng.run()
        assert sorted(got) == [1, 2, 3]

    def test_reset_stats(self):
        eng, net = make_net()
        net.send(msg(0, 1))
        eng.run()
        net.reset_stats()
        assert net.stats.msgs_sent == 0
        assert net.nodes[0].tx_bytes == 0


class TestStats:
    def test_loss_rate_zero_when_idle(self):
        _eng, net = make_net()
        assert net.stats.loss_rate == 0.0
        assert net.stats.update_loss_rate == 0.0
