"""Unit tests for Node/Cluster assembly and entity registry."""

import numpy as np
import pytest

from repro.memory.entity import Entity, EntityKind
from repro.sim.cluster import Cluster
from repro.sim.costmodel import OLD_CLUSTER


def make_entity(cluster, node, n_pages=8):
    pages = np.arange(n_pages, dtype=np.uint64) + 1000 * (len(cluster.entities) + 1)
    return Entity.create(cluster, node, pages)


class TestConstruction:
    def test_basic(self):
        c = Cluster(n_nodes=4, cost="new-cluster")
        assert c.n_nodes == 4
        assert len(c.nodes) == 4
        assert c.cost.name == "new-cluster"

    def test_cost_model_object(self):
        c = Cluster(n_nodes=2, cost=OLD_CLUSTER)
        assert c.cost is OLD_CLUSTER

    def test_node_count_capped_by_testbed(self):
        with pytest.raises(ValueError):
            Cluster(n_nodes=9, cost="new-cluster")  # New-cluster has 8
        Cluster(n_nodes=128, cost="big-cluster")  # fine

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            Cluster(n_nodes=0)

    def test_seed_controls_rng(self):
        a = Cluster(2, seed=1).rng.integers(0, 100, 5)
        b = Cluster(2, seed=1).rng.integers(0, 100, 5)
        assert np.array_equal(a, b)


class TestEntityRegistry:
    def test_ids_dense_and_unique(self):
        c = Cluster(4)
        es = [make_entity(c, i % 4) for i in range(6)]
        assert [e.entity_id for e in es] == list(range(6))

    def test_node_of(self):
        c = Cluster(4)
        e = make_entity(c, 2)
        assert c.node_of(e.entity_id) == 2
        assert c.entity(e.entity_id) is e

    def test_entities_on(self):
        c = Cluster(2)
        a = make_entity(c, 0)
        b = make_entity(c, 1)
        d = make_entity(c, 0)
        assert {e.entity_id for e in c.entities_on(0)} == {a.entity_id,
                                                           d.entity_id}
        assert [e.entity_id for e in c.entities_on(1)] == [b.entity_id]

    def test_nodes_hosting(self):
        c = Cluster(3)
        a = make_entity(c, 0)
        b = make_entity(c, 2)
        assert c.nodes_hosting([a.entity_id, b.entity_id]) == {0, 2}

    def test_invalid_placement_rejected(self):
        c = Cluster(2)
        with pytest.raises(ValueError):
            make_entity(c, 5)

    def test_entity_name_autoassigned(self):
        c = Cluster(2)
        e = Entity.create(c, 0, np.arange(4, dtype=np.uint64),
                          kind=EntityKind.VM)
        assert e.name == f"vm-{e.entity_id}"

    def test_mask_helper(self):
        c = Cluster(2)
        assert c.entity_id_mask([0, 3]) == 0b1001

    def test_all_entity_ids_sorted(self):
        c = Cluster(2)
        for i in range(4):
            make_entity(c, i % 2)
        assert c.all_entity_ids() == [0, 1, 2, 3]
        assert c.n_entities == 4
