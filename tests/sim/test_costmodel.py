"""Unit tests for the testbed cost models and their calibration anchors."""

import pytest

from repro.sim.costmodel import BIG_CLUSTER, NEW_CLUSTER, OLD_CLUSTER, TESTBEDS


class TestPresets:
    def test_registry(self):
        assert set(TESTBEDS) == {"old-cluster", "new-cluster", "big-cluster"}

    def test_node_counts_match_paper(self):
        assert OLD_CLUSTER.n_nodes == 24
        assert NEW_CLUSTER.n_nodes == 8
        assert BIG_CLUSTER.n_nodes == 128  # the scale Figs 7/12/17 reach

    def test_old_cluster_is_slowest(self):
        for field in ("dht_insert_hash", "hash_page_md5", "page_touch",
                      "gzip_per_byte"):
            assert getattr(OLD_CLUSTER, field) > getattr(NEW_CLUSTER, field)
        assert OLD_CLUSTER.link_bw < NEW_CLUSTER.link_bw < BIG_CLUSTER.link_bw

    def test_fig5_anchor_new_cluster(self):
        """Fig 5 plateaus: inserts cost more than deletes; hash ops more
        than block ops; all in the single-digit-microsecond range."""
        c = NEW_CLUSTER
        assert c.dht_insert_hash > c.dht_delete_hash
        assert c.dht_insert_hash > c.nsm_insert_block
        assert 1e-6 < c.dht_insert_hash < 10e-6

    def test_md5_more_expensive_than_sfh(self):
        for c in TESTBEDS.values():
            assert c.hash_page_md5 > 2 * c.hash_page_sfh

    def test_hash_page_cost_dispatch(self):
        assert NEW_CLUSTER.hash_page_cost("md5") == NEW_CLUSTER.hash_page_md5
        assert NEW_CLUSTER.hash_page_cost("sfh") == NEW_CLUSTER.hash_page_sfh
        with pytest.raises(ValueError):
            NEW_CLUSTER.hash_page_cost("sha1")


class TestDerived:
    def test_tx_time(self):
        assert NEW_CLUSTER.tx_time(NEW_CLUSTER.link_bw) == pytest.approx(1.0)
        assert NEW_CLUSTER.tx_time(0) == 0.0

    def test_rtt(self):
        assert NEW_CLUSTER.rtt() == 2 * NEW_CLUSTER.udp_latency

    def test_tree_depth(self):
        c = NEW_CLUSTER
        assert c.tree_depth(1) == 0
        assert c.tree_depth(2) == 1
        assert c.tree_depth(8) == 3
        assert c.tree_depth(9) == 4
        assert c.tree_depth(128) == 7

    def test_barrier_grows_logarithmically(self):
        c = OLD_CLUSTER
        b2, b16 = c.barrier_time(2), c.barrier_time(16)
        assert b16 > b2
        assert b16 < 8 * b2  # log growth, not linear

    def test_reliable_bcast_scales_mildly(self):
        c = NEW_CLUSTER
        t1 = c.reliable_bcast_time(1, 256)
        t8 = c.reliable_bcast_time(8, 256)
        assert t8 > t1
        assert t8 < 1e-2

    def test_scaled_override(self):
        c = NEW_CLUSTER.scaled(page_touch=1.0)
        assert c.page_touch == 1.0
        assert c.link_bw == NEW_CLUSTER.link_bw
        # frozen original untouched
        assert NEW_CLUSTER.page_touch != 1.0


class TestMonitorCalibration:
    def test_scan_overhead_matches_paper_sec52(self):
        """Old-cluster, 2 s period, MD5: ~6.4% of one CPU; SFH ~2.2%.

        The paper traces 'a typical process from a range of HPC
        benchmarks' (~64 MB); that reproduces its numbers within
        tolerance.
        """
        c = OLD_CLUSTER
        traced_pages = int(64 * 2**20 / 4096)
        scan = traced_pages * (c.page_scan_read + c.hash_page_md5)
        overhead_md5 = scan / 2.0
        assert 0.045 <= overhead_md5 <= 0.085
        scan_sfh = traced_pages * (c.page_scan_read + c.hash_page_sfh)
        assert 0.015 <= scan_sfh / 2.0 <= 0.03
        # 5 s period: 2.6% (MD5) and <1.5% (SFH)
        assert 0.018 <= scan / 5.0 <= 0.035
        assert scan_sfh / 5.0 < 0.012
