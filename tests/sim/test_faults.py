"""Unit tests for the fault-injection plan/injector (docs/FAULTS.md)."""

import pytest

from repro import Cluster, FaultPlan
from repro.sim.faults import FaultEvent, FaultInjector, FaultKind


class TestFaultPlanBuilders:
    def test_builders_chain_and_record_events(self):
        plan = (FaultPlan()
                .set_loss(0.0, 0.25)
                .kill(1.0, 6, 7)
                .partition(2.0, [0, 1], [2, 3])
                .heal(3.0)
                .scale_latency(4.0, 2.5)
                .restart(5.0, 6))
        kinds = [e.kind for e in plan.events]
        assert kinds == [FaultKind.LOSS, FaultKind.KILL, FaultKind.PARTITION,
                         FaultKind.HEAL, FaultKind.LATENCY, FaultKind.RESTART]
        assert plan.events[1].nodes == (6, 7)
        assert plan.events[2].groups == ((0, 1), (2, 3))
        assert plan.events[0].factor == 0.25

    def test_sorted_events_orders_by_time(self):
        plan = FaultPlan().restart(5.0, 1).kill(1.0, 1).set_loss(0.0, 0.1)
        assert [e.time for e in plan.sorted_events()] == [0.0, 1.0, 5.0]

    def test_loss_probability_validated(self):
        with pytest.raises(ValueError):
            FaultPlan().set_loss(0.0, 1.5)
        with pytest.raises(ValueError):
            FaultPlan().set_loss(0.0, -0.1)

    def test_latency_factor_validated(self):
        with pytest.raises(ValueError):
            FaultPlan().scale_latency(0.0, 0.0)

    def test_describe_covers_every_kind(self):
        evs = [FaultEvent(0.0, FaultKind.KILL, nodes=(1,)),
               FaultEvent(0.0, FaultKind.RESTART, nodes=(1,)),
               FaultEvent(0.0, FaultKind.PARTITION, groups=((0,), (1,))),
               FaultEvent(0.0, FaultKind.HEAL),
               FaultEvent(0.0, FaultKind.LOSS, factor=0.5),
               FaultEvent(0.0, FaultKind.LATENCY, factor=2.0)]
        texts = [e.describe() for e in evs]
        assert all(isinstance(t, str) and t for t in texts)
        assert "kill" in texts[0] and "loss" in texts[4]


class TestFaultInjector:
    def test_schedule_applies_events_at_their_times(self):
        cluster = Cluster(4, seed=0)
        plan = (FaultPlan()
                .set_loss(0.0, 0.3)
                .kill(1.0, 2)
                .partition(2.0, [0, 1], [3])
                .restart(3.0, 2)
                .heal(4.0)
                .scale_latency(5.0, 4.0))
        killed, restarted = [], []
        inj = plan.schedule(cluster.network, cluster.engine,
                            on_kill=killed.append, on_restart=restarted.append)
        cluster.engine.run()
        net = cluster.network
        assert killed == [2] and restarted == [2]
        assert net.node_up[2]                  # restarted
        assert net.loss_prob == 0.3
        assert net.latency_scale == 4.0
        assert net.link_ok(0, 3)               # healed
        # Log entries come out in simulated-time order, one per event.
        assert len(inj.log) == 6
        assert [t for t, _ in inj.log] == sorted(t for t, _ in inj.log)

    def test_kill_downs_node_and_partition_blocks_links(self):
        cluster = Cluster(4, seed=0)
        FaultPlan().kill(0.5, 1).partition(1.0, [0], [2, 3]).schedule(
            cluster.network, cluster.engine)
        cluster.engine.run()
        net = cluster.network
        assert not net.node_up[1]
        assert not net.link_ok(0, 2) and not net.link_ok(3, 0)
        assert net.link_ok(2, 3)               # within-group link untouched

    def test_injector_without_callbacks(self):
        cluster = Cluster(2, seed=0)
        inj = FaultInjector(cluster.network)
        inj.apply(FaultEvent(0.0, FaultKind.KILL, nodes=(1,)))
        assert not cluster.network.node_up[1]
        inj.apply(FaultEvent(0.0, FaultKind.RESTART, nodes=(1,)))
        assert cluster.network.node_up[1]
