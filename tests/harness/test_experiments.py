"""Regression tests for the experiment runners (small parameterizations).

The benchmarks run each figure at paper scale and assert its shape; these
tests run miniature versions so `pytest tests/` alone protects the whole
harness against breakage.
"""

import pytest

from repro.harness import experiments as X
from repro.util.stats import Table


def check_table(t: Table, series: set[str], n_rows: int) -> None:
    assert isinstance(t, Table)
    assert {s.name for s in t.series} == series
    assert len(t.x_values) == n_rows
    for s in t.series:
        assert len(s.values) == n_rows
        assert all(v == v for v in s.values)  # no NaNs
    assert t.render()  # renders without error


class TestFigureRunners:
    def test_fig05_small(self):
        t = X.run_fig05(sizes=(10_000, 40_000), reps=2_000)
        check_table(t, {"insert_hash_ns", "delete_hash_ns",
                        "insert_block_ns", "delete_block_ns"}, 2)
        assert all(v > 0 for s in t.series for v in s.values)

    def test_fig06_small(self):
        t = X.run_fig06(mem_gb=(1, 4))
        check_table(t, {"malloc_mb", "custom_mb", "malloc_overhead_pct",
                        "custom_overhead_pct"}, 2)

    def test_fig07_small(self):
        t = X.run_fig07(node_counts=(1, 2, 4), gb_per_entity=0.25, R=256)
        check_table(t, {"updates_millions", "loss_rate_pct"}, 3)
        v = t.get("updates_millions").values
        assert v[1] == pytest.approx(2 * v[0], rel=0.01)

    def test_fig08_small(self):
        t = X.run_fig08(sizes=(50_000, 200_000), reps=5_000)
        check_table(t, {"entities_query_ns", "num_copies_query_ns",
                        "entities_compute_ns", "num_copies_compute_ns"}, 2)

    def test_fig09_small(self):
        t = X.run_fig09(hash_millions=(2, 8), R=512)
        check_table(t, {"sharing_single_ms", "num_shared_single_ms",
                        "sharing_distributed_ms",
                        "num_shared_distributed_ms"}, 2)
        assert t.get("sharing_single_ms").values[1] > \
            t.get("sharing_distributed_ms").values[1]

    def test_fig10_small(self):
        t = X.run_fig10(mem_mb=(256, 512), R=512)
        check_table(t, {"interactive_ms", "batch_ms"}, 2)

    def test_fig11_small(self):
        t = X.run_fig11(proc_counts=(1, 2), R=512)
        check_table(t, {"interactive_ms", "batch_ms",
                        "traffic_per_node_mb"}, 2)

    def test_fig12_small(self):
        t = X.run_fig12(node_counts=(1, 4), R=512, gb_per_proc=0.25)
        check_table(t, {"response_ms"}, 2)

    def test_fig14_small(self):
        for wl in ("moldy", "nasty"):
            t = X.run_fig14(node_counts=(1, 2), sim_pages=256, workload=wl)
            check_table(t, {"raw_pct", "raw_gzip_pct", "concord_pct",
                            "concord_gzip_pct", "dos_pct"}, 2)

    def test_fig14_runner_aliases(self):
        assert "moldy" in X.run_fig14a.__doc__.lower()
        assert "nasty" in X.run_fig14b.__doc__.lower()

    def test_fig15_small(self):
        t = X.run_fig15(mem_mb=(256, 512), R=1024)
        check_table(t, {"raw_gzip_ms", "concord_ms", "raw_ms"}, 2)

    def test_fig16_small(self):
        t = X.run_fig16(node_counts=(1, 2), R=1024)
        check_table(t, {"raw_gzip_ms", "concord_ms", "raw_ms"}, 2)

    def test_fig17_small(self):
        t = X.run_fig17(node_counts=(1, 2), R=1024, gb_per_proc=0.25)
        check_table(t, {"response_ms"}, 2)

    def test_monitor_overhead_small(self):
        t = X.run_monitor_overhead(periods=(2.0,), mem_mb=16)
        check_table(t, {"md5_cpu_pct", "sfh_cpu_pct",
                        "update_traffic_pct_of_link"}, 1)


class TestAblationRunners:
    def test_modes_small(self):
        t = X.run_ablation_modes(redundancy=(0.0, 0.5), sim_pages=256)
        check_table(t, {"interactive_ms", "batch_ms", "ckpt_ratio_pct"}, 2)

    def test_redundancy_small(self):
        t = X.run_ablation_redundancy(common=(0.0, 0.8), sim_pages=256)
        check_table(t, {"coverage_pct", "ckpt_ratio_pct",
                        "handled_per_believed_pct"}, 2)
        r = t.get("ckpt_ratio_pct").values
        assert r[1] < r[0]

    def test_staleness_small(self):
        t = X.run_ablation_staleness(mutate=(0.0, 0.5), sim_pages=256)
        check_table(t, {"coverage_pct", "stale_hashes_pct",
                        "retries_per_hash", "restore_exact"}, 2)
        assert t.get("restore_exact").values == [1.0, 1.0]

    def test_throttle_small(self):
        t = X.run_ablation_throttle(rates=(None, 100), sim_pages=256)
        check_table(t, {"tracked_pct_after_1s", "pending_updates"}, 2)

    def test_rdma_small(self):
        t = X.run_ablation_rdma(node_counts=(4,), gb_per_entity=0.25,
                                R=256)
        check_table(t, {"udp_loss_pct", "rdma_loss_pct"}, 1)
        assert t.get("rdma_loss_pct").values == [0.0]


class TestRegistry:
    def test_all_experiments_callable_registry(self):
        assert len(X.ALL_EXPERIMENTS) >= 18
        for name, fn in X.ALL_EXPERIMENTS.items():
            assert callable(fn), name
