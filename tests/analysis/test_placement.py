"""Unit tests for sharing-aware placement (Memory Buddies over ConCORD)."""

import numpy as np
import pytest

from repro import Cluster, ConCORD, Entity
from repro.analysis import (
    placement_sharing_score,
    sharing_graph,
    suggest_colocation,
)


def build_vm_families(n_families=2, vms_per_family=2, shared=32, private=16,
                      seed=0):
    """Families of VMs: same-family VMs share an OS image; cross-family
    VMs share nothing.  Spread so families start split across nodes."""
    cluster = Cluster(4, seed=seed)
    rng = np.random.default_rng(seed)
    vms = []
    for fam in range(n_families):
        base = np.arange(shared, dtype=np.uint64) + 10_000 * (fam + 1)
        for i in range(vms_per_family):
            priv = rng.integers((fam * 8 + i + 1) << 40,
                                (fam * 8 + i + 2) << 40,
                                private, dtype=np.uint64)
            node = (fam + i * n_families) % cluster.n_nodes
            vms.append(Entity.create(cluster, node,
                                     np.concatenate([base, priv]),
                                     name=f"fam{fam}-vm{i}"))
    concord = ConCORD(cluster)
    concord.initial_scan()
    return cluster, vms, concord


class TestSharingGraph:
    def test_family_edges_only(self):
        _c, vms, concord = build_vm_families()
        g = sharing_graph(concord, [v.entity_id for v in vms])
        assert set(g.nodes) == {v.entity_id for v in vms}
        # fam0: vms[0],vms[1]; fam1: vms[2],vms[3]
        assert g.has_edge(vms[0].entity_id, vms[1].entity_id)
        assert g.has_edge(vms[2].entity_id, vms[3].entity_id)
        assert not g.has_edge(vms[0].entity_id, vms[2].entity_id)

    def test_edge_weight_is_shared_distinct_hashes(self):
        _c, vms, concord = build_vm_families(shared=32)
        g = sharing_graph(concord, [v.entity_id for v in vms])
        assert g[vms[0].entity_id][vms[1].entity_id]["weight"] == 32

    def test_multicopy_counts_once(self):
        """An entity holding a block twice still shares one distinct hash."""
        cluster = Cluster(2, seed=1)
        a = Entity.create(cluster, 0, np.array([5, 5, 6], dtype=np.uint64))
        b = Entity.create(cluster, 1, np.array([5, 7, 8], dtype=np.uint64))
        concord = ConCORD(cluster)
        concord.initial_scan()
        g = sharing_graph(concord, [a.entity_id, b.entity_id])
        assert g[a.entity_id][b.entity_id]["weight"] == 1


class TestColocation:
    def test_families_reunited(self):
        _c, vms, concord = build_vm_families()
        eids = [v.entity_id for v in vms]
        g = sharing_graph(concord, eids)
        placement = suggest_colocation(g, n_nodes=2, capacity=2)
        assert placement[vms[0].entity_id] == placement[vms[1].entity_id]
        assert placement[vms[2].entity_id] == placement[vms[3].entity_id]
        assert placement[vms[0].entity_id] != placement[vms[2].entity_id]

    def test_score_improves_over_initial_spread(self):
        cluster, vms, concord = build_vm_families()
        eids = [v.entity_id for v in vms]
        g = sharing_graph(concord, eids)
        initial = {v.entity_id: v.node_id for v in vms}
        suggested = suggest_colocation(g, n_nodes=2, capacity=2)
        assert placement_sharing_score(g, suggested) > \
            placement_sharing_score(g, initial)

    def test_capacity_respected(self):
        _c, vms, concord = build_vm_families(n_families=3, vms_per_family=2)
        g = sharing_graph(concord, [v.entity_id for v in vms])
        placement = suggest_colocation(g, n_nodes=3, capacity=2)
        from collections import Counter
        loads = Counter(placement.values())
        assert max(loads.values()) <= 2
        assert len(placement) == 6

    def test_validation(self):
        _c, vms, concord = build_vm_families()
        g = sharing_graph(concord, [v.entity_id for v in vms])
        with pytest.raises(ValueError):
            suggest_colocation(g, n_nodes=0, capacity=2)
        with pytest.raises(ValueError):
            suggest_colocation(g, n_nodes=2, capacity=0)
        with pytest.raises(ValueError):
            suggest_colocation(g, n_nodes=1, capacity=2)  # 4 vms > 2 slots

    def test_no_sharing_still_places_everyone(self):
        from repro import workloads
        from tests.conftest import make_system

        _c, ents, concord = make_system(n_nodes=4,
                                        spec=workloads.nasty(4, 16))
        eids = [e.entity_id for e in ents]
        g = sharing_graph(concord, eids)
        placement = suggest_colocation(g, n_nodes=4, capacity=1)
        assert sorted(placement) == sorted(eids)
        assert placement_sharing_score(g, placement) == 0

    def test_score_of_empty_placement(self):
        _c, vms, concord = build_vm_families()
        g = sharing_graph(concord, [v.entity_id for v in vms])
        assert placement_sharing_score(g, {}) == 0
