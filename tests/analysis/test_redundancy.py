"""Unit tests for redundancy profiling."""

import numpy as np
import pytest

from repro import workloads
from repro.analysis import (
    RedundancyProfiler,
    copy_distribution,
    top_shared_content,
)
from repro.queries.reference import ReferenceModel
from tests.conftest import make_system


class TestProfiler:
    def test_snapshot_matches_queries(self):
        cluster, ents, concord = make_system(n_nodes=4)
        eids = [e.entity_id for e in ents]
        prof = RedundancyProfiler(concord, eids)
        snap = prof.snapshot()
        assert snap.sharing == pytest.approx(concord.sharing(eids).value)
        assert snap.dos == pytest.approx(1 - snap.sharing)
        assert snap.dedup_potential == snap.sharing
        assert prof.history == [snap]

    def test_snapshot_syncs_by_default(self):
        cluster, ents, concord = make_system(n_nodes=2)
        eids = [e.entity_id for e in ents]
        prof = RedundancyProfiler(concord, eids)
        rng = np.random.default_rng(0)
        for e in ents:
            e.mutate_random(0.5, rng)
        snap = prof.snapshot()
        ref = ReferenceModel(cluster)
        assert snap.sharing == pytest.approx(ref.sharing(eids))

    def test_no_sync_keeps_stale_view(self):
        cluster, ents, concord = make_system(n_nodes=2)
        eids = [e.entity_id for e in ents]
        prof = RedundancyProfiler(concord, eids)
        before = prof.snapshot(sync=False).sharing
        for e in ents:
            e.mutate_random(0.5, np.random.default_rng(0))
        assert prof.snapshot(sync=False).sharing == before

    def test_requires_entities(self):
        _c, _e, concord = make_system(n_nodes=2)
        with pytest.raises(ValueError):
            RedundancyProfiler(concord, [])

    def test_periodic_profile_under_churn(self):
        """Profile a churning workload on the engine: redundancy decays as
        unique writes replace shared pages."""
        from repro.workloads import ChurnDriver

        cluster, ents, concord = make_system(
            n_nodes=2, spec=workloads.moldy(2, 128, seed=1))
        eids = [e.entity_id for e in ents]
        prof = RedundancyProfiler(concord, eids)
        prof.snapshot(time=0.0)
        driver = ChurnDriver(ents, pages_per_tick=16, seed=1)
        driver.run_on(cluster.engine, period=1.0, horizon=8.0)
        prof.run_on(cluster.engine, period=2.0, horizon=8.0)
        cluster.engine.run()
        assert len(prof.history) >= 4
        assert prof.history[-1].sharing < prof.history[0].sharing
        table = prof.report()
        assert "sharing" in table.render()
        assert len(table.x_values) == len(prof.history)

    def test_run_on_validates_period(self):
        cluster, ents, concord = make_system(n_nodes=2)
        prof = RedundancyProfiler(concord, [ents[0].entity_id])
        with pytest.raises(ValueError):
            prof.run_on(cluster.engine, 0, 1)


class TestCopyDistribution:
    def test_matches_reference_counts(self):
        cluster, ents, concord = make_system(n_nodes=4)
        eids = [e.entity_id for e in ents]
        dist = copy_distribution(concord, eids)
        ref = ReferenceModel(cluster).copy_counts(eids)
        from collections import Counter
        want = Counter(ref.values())
        assert dist == want

    def test_nasty_all_single_copy(self):
        _c, ents, concord = make_system(n_nodes=2,
                                        spec=workloads.nasty(2, 64))
        dist = copy_distribution(concord, [e.entity_id for e in ents])
        assert set(dist) == {1}
        assert dist[1] == 128

    def test_subset_scoping(self):
        cluster, ents, concord = make_system(n_nodes=4)
        sub = [ents[0].entity_id]
        dist = copy_distribution(concord, sub)
        ref = ReferenceModel(cluster).copy_counts(sub)
        assert sum(dist.values()) == len(ref)


class TestTopShared:
    def test_descending_and_consistent(self):
        cluster, ents, concord = make_system(n_nodes=4)
        eids = [e.entity_id for e in ents]
        top = top_shared_content(concord, eids, n=5)
        assert len(top) == 5
        copies = [c for _h, c in top]
        assert copies == sorted(copies, reverse=True)
        ref = ReferenceModel(cluster).copy_counts(eids)
        assert copies[0] == max(ref.values())
        for h, c in top:
            assert ref[h] == c

    def test_n_larger_than_content(self):
        _c, ents, concord = make_system(n_nodes=2,
                                        spec=workloads.nasty(2, 4))
        top = top_shared_content(concord, [e.entity_id for e in ents], n=100)
        assert len(top) == 8
