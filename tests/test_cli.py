"""Unit tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import _parse_budget, build_parser, main
from repro.harness import ALL_EXPERIMENTS


def run_cli(*argv):
    buf = io.StringIO()
    code = main(list(argv), out=buf)
    return code, buf.getvalue()


class TestList:
    def test_lists_every_experiment(self):
        code, out = run_cli("list")
        assert code == 0
        for name in ALL_EXPERIMENTS:
            assert name in out

    def test_summaries_present(self):
        _code, out = run_cli("list")
        assert "Fig 9" in out


class TestRun:
    def test_unknown_experiment(self, capsys):
        code, _out = run_cli("run", "fig99")
        assert code == 2

    def test_run_single(self):
        code, out = run_cli("run", "fig06")
        assert code == 0
        assert "Fig 6" in out
        assert "completed in" in out

    def test_run_with_out_dir(self, tmp_path):
        code, _out = run_cli("run", "fig06", "--out", str(tmp_path))
        assert code == 0
        assert (tmp_path / "fig06.txt").read_text().startswith("== Fig 6")


class TestDemoInfo:
    def test_demo(self):
        code, out = run_cli("demo")
        assert code == 0
        assert "restore verified" in out

    def test_info_lists_testbeds(self):
        code, out = run_cli("info")
        assert code == 0
        for name in ("old-cluster", "new-cluster", "big-cluster"):
            assert name in out


class TestTrace:
    def test_traced_null_writes_artifacts(self, tmp_path):
        code, out = run_cli("trace", "--out", str(tmp_path))
        assert code == 0
        assert "span_wall_ms" in out
        chrome = tmp_path / "null.trace.json"
        assert chrome.exists()
        assert (tmp_path / "null.trace.jsonl").exists()
        assert (tmp_path / "null.metrics.txt").exists()
        from repro.obs import validate_chrome_trace
        assert validate_chrome_trace(chrome) > 0

    def test_traced_experiment_per_run_artifacts(self, tmp_path):
        code, out = run_cli("trace", "fig11", "--out", str(tmp_path))
        assert code == 0
        runs = sorted(tmp_path.glob("fig11.run*.trace.json"))
        assert runs
        from repro.obs import validate_chrome_trace
        for p in runs:
            assert validate_chrome_trace(p) > 0

    def test_unknown_experiment(self, tmp_path):
        code, _out = run_cli("trace", "fig99", "--out", str(tmp_path))
        assert code == 2


class TestBench:
    """CLI surface of the benchmark harness and regression gate."""

    # The cheapest quick-tier spec (~0.1s); everything run-based below
    # filters down to it so the CLI tests stay fast.
    SPEC = "monitor.scan"

    def _bench(self, *argv):
        return run_cli("bench", "--no-trajectory", *argv)

    def test_list_names_specs_with_tier(self):
        code, out = run_cli("bench", "--list")
        assert code == 0
        assert "cmd.null" in out and "[quick]" in out
        assert "hotpaths.collective_scan.1m" in out and "[full]" in out

    def test_selftest_trips_gate_and_exits_1(self):
        code, out = run_cli("bench", "--selftest")
        assert code == 1
        assert "REGRESSION" in out

    def test_filter_without_match_exits_2(self):
        code, _out = self._bench("--quick", "--filter", "zzz-no-such")
        assert code == 2

    def test_quick_run_appends_schema_valid_trajectory(self, tmp_path):
        traj = tmp_path / "traj.json"
        code, out = run_cli("bench", "--quick", "--filter", self.SPEC,
                            "--trajectory", str(traj))
        assert code == 0
        assert self.SPEC in out
        doc = json.loads(traj.read_text())
        assert doc["schema"] == 1
        (rec,) = doc["records"]
        assert rec["name"] == self.SPEC
        assert rec["metrics"]
        for key in ("python", "numpy", "machine", "git_sha"):
            assert key in rec["env"]

    def test_compare_missing_baseline_fails_fast(self, tmp_path):
        code, out = self._bench("--quick", "--compare",
                                str(tmp_path / "nope.json"))
        assert code == 2
        assert "benchmark(s)" not in out  # failed before running anything

    def test_compare_malformed_baseline_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, _out = self._bench("--quick", "--compare", str(bad))
        assert code == 2

    def test_compare_old_schema_baseline_exits_2(self, tmp_path):
        old = tmp_path / "old.json"
        old.write_text(json.dumps({"schema": 0, "records": []}))
        code, _out = self._bench("--quick", "--compare", str(old))
        assert code == 2

    def test_write_baseline_then_compare_passes(self, tmp_path):
        base = tmp_path / "base.json"
        code, _out = self._bench("--quick", "--filter", self.SPEC,
                                 "--write-baseline", str(base))
        assert code == 0
        code, out = self._bench("--quick", "--filter", self.SPEC,
                                "--compare", str(base))
        assert code == 0
        assert "[gate: OK" in out

    def test_doctored_baseline_trips_gate(self, tmp_path):
        base = tmp_path / "base.json"
        code, _out = self._bench("--quick", "--filter", self.SPEC,
                                 "--write-baseline", str(base))
        assert code == 0
        # Doctor every gated metric so the fresh run looks 2x worse.
        doc = json.loads(base.read_text())
        for rec in doc["records"]:
            for m in rec["metrics"].values():
                if m["gated"]:
                    m["value"] = (m["value"] * 2 if m["higher_is_better"]
                                  else m["value"] / 2)
        base.write_text(json.dumps(doc))
        code, out = self._bench("--quick", "--filter", self.SPEC,
                                "--compare", str(base), "--budget", "25%")
        assert code == 1
        assert "REGRESSION" in out


class TestServe:
    """CLI surface of the query-serving frontend (docs/SERVING.md)."""

    ARGS = ("serve", "--clients", "4", "--duration", "0.05",
            "--population", "32", "--zipf", "1.4")

    def test_summary_table_and_exit_zero(self):
        code, out = run_cli(*self.ARGS)
        assert code == 0
        for row in ("submitted", "completed", "throughput_qps",
                    "coalesce_rate", "cache_hit_rate"):
            assert row in out

    def test_verify_cache_clean_run(self):
        code, out = run_cli(*self.ARGS, "--verify-cache")
        assert code == 0
        assert "every hit matched fresh execution" in out

    def test_expect_coalescing_holds_on_hot_keys(self):
        code, _out = run_cli(*self.ARGS, "--expect-coalescing")
        assert code == 0

    def test_expect_coalescing_fails_without_any(self):
        # A single client at a trickle rate cannot coalesce anything.
        code, out = run_cli("serve", "--clients", "1", "--duration", "0.01",
                            "--rate", "100", "--expect-coalescing")
        assert code == 1
        assert "expected request coalescing" in out

    def test_no_cache_disables_hits(self):
        code, out = run_cli(*self.ARGS, "--no-cache")
        assert code == 0
        for line in out.splitlines():
            if "cache_hits" in line:
                assert line.split()[-1] == "0"

    def test_closed_loop_runs(self):
        code, out = run_cli("serve", "--closed", "--clients", "4",
                            "--duration", "0.02", "--think", "1e-4")
        assert code == 0
        assert "completed" in out

    def test_bad_args_exit_2(self):
        assert run_cli("serve", "--clients", "0")[0] == 2
        assert run_cli("serve", "--nodes", "1")[0] == 2
        assert run_cli("serve", "--duration", "0")[0] == 2

    def test_rate_limit_sheds_and_reports(self):
        code, out = run_cli("serve", "--clients", "8", "--duration", "0.05",
                            "--rate", "2000", "--rate-limit", "1000")
        assert code == 0
        assert "rejected[rate_limited]" in out


class TestStorageFlags:
    """--storage/--storage-dir/--expect-warm (docs/STORAGE.md)."""

    SERVE = ("serve", "--clients", "2", "--duration", "0.02",
             "--population", "16", "--pages", "128")

    def test_bench_lists_storage_specs(self):
        code, out = run_cli("bench", "--list")
        assert code == 0
        for name in ("storage.scan.memory", "storage.scan.mmap",
                     "storage.scan.sqlite", "storage.restart.cold_vs_warm"):
            assert name in out

    def test_bench_storage_flag_does_not_leak_env(self, tmp_path):
        # --storage must not leak into the process env (tier-2 CI runs
        # with CONCORD_STORAGE already set: assert unchanged, not unset).
        import os
        before = {k: os.environ.get(k)
                  for k in ("CONCORD_STORAGE", "CONCORD_STORAGE_DIR")}
        code, _out = run_cli("bench", "--no-trajectory", "--quick",
                             "--filter", "monitor.scan",
                             "--storage", "sqlite",
                             "--storage-dir", str(tmp_path))
        assert code == 0
        assert {k: os.environ.get(k) for k in before} == before

    def test_serve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            run_cli(*self.SERVE, "--storage", "bogus")

    def test_expect_warm_requires_persistent_backend(self, monkeypatch):
        monkeypatch.delenv("CONCORD_STORAGE", raising=False)
        code, out = run_cli(*self.SERVE, "--expect-warm")
        assert code == 2
        assert "persistent" in out
        code, out = run_cli(*self.SERVE, "--storage", "memory",
                            "--expect-warm")
        assert code == 2

    def test_expect_warm_fails_on_empty_root(self, tmp_path):
        code, out = run_cli(*self.SERVE, "--storage", "sqlite",
                            "--storage-dir", str(tmp_path),
                            "--expect-warm")
        assert code == 1
        assert "expected a warm restart" in out

    @pytest.mark.parametrize("backend", ("mmap", "sqlite"))
    def test_serve_twice_warm_restarts(self, backend, tmp_path):
        cold = self.SERVE + ("--storage", backend,
                             "--storage-dir", str(tmp_path))
        code, out = run_cli(*cold)
        assert code == 0
        assert "warm restart" not in out
        code, out = run_cli(*cold, "--expect-warm")
        assert code == 0
        assert f"[warm restart from {backend} storage:" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_budget_formats(self):
        assert _parse_budget("25%") == pytest.approx(0.25)
        assert _parse_budget("0.25") == pytest.approx(0.25)
        assert _parse_budget("30") == pytest.approx(0.30)

    def test_budget_invalid(self):
        with pytest.raises(SystemExit):
            _parse_budget("abc")
        with pytest.raises(SystemExit):
            _parse_budget("-5%")
