"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.harness import ALL_EXPERIMENTS


def run_cli(*argv):
    buf = io.StringIO()
    code = main(list(argv), out=buf)
    return code, buf.getvalue()


class TestList:
    def test_lists_every_experiment(self):
        code, out = run_cli("list")
        assert code == 0
        for name in ALL_EXPERIMENTS:
            assert name in out

    def test_summaries_present(self):
        _code, out = run_cli("list")
        assert "Fig 9" in out


class TestRun:
    def test_unknown_experiment(self, capsys):
        code, _out = run_cli("run", "fig99")
        assert code == 2

    def test_run_single(self):
        code, out = run_cli("run", "fig06")
        assert code == 0
        assert "Fig 6" in out
        assert "completed in" in out

    def test_run_with_out_dir(self, tmp_path):
        code, _out = run_cli("run", "fig06", "--out", str(tmp_path))
        assert code == 0
        assert (tmp_path / "fig06.txt").read_text().startswith("== Fig 6")


class TestDemoInfo:
    def test_demo(self):
        code, out = run_cli("demo")
        assert code == 0
        assert "restore verified" in out

    def test_info_lists_testbeds(self):
        code, out = run_cli("info")
        assert code == 0
        for name in ("old-cluster", "new-cluster", "big-cluster"):
            assert name in out


class TestTrace:
    def test_traced_null_writes_artifacts(self, tmp_path):
        code, out = run_cli("trace", "--out", str(tmp_path))
        assert code == 0
        assert "span_wall_ms" in out
        chrome = tmp_path / "null.trace.json"
        assert chrome.exists()
        assert (tmp_path / "null.trace.jsonl").exists()
        assert (tmp_path / "null.metrics.txt").exists()
        from repro.obs import validate_chrome_trace
        assert validate_chrome_trace(chrome) > 0

    def test_traced_experiment_per_run_artifacts(self, tmp_path):
        code, out = run_cli("trace", "fig11", "--out", str(tmp_path))
        assert code == 0
        runs = sorted(tmp_path.glob("fig11.run*.trace.json"))
        assert runs
        from repro.obs import validate_chrome_trace
        for p in runs:
            assert validate_chrome_trace(p) > 0

    def test_unknown_experiment(self, tmp_path):
        code, _out = run_cli("trace", "fig99", "--out", str(tmp_path))
        assert code == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])
