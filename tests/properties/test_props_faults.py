"""Property-based tests for failover/repair (docs/FAULTS.md).

The repair invariant: after ANY schedule of kills, restarts, and repair
passes over entity-free nodes, one final restart-all + full repair makes
the DHT state (total hashes and per-hash entity masks) exactly equal a
from-scratch rebuild — the paper's "the DHT can always be rebuilt from
node-local content" as a machine-checked property.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Cluster, ConCORD, ConCORDConfig, Entity

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

N_NODES = 4
ENTITY_NODES = (0, 1)          # entities pinned here; their memory survives
FAULTY_NODES = (2, 3)          # schedules only ever touch these

# An op is (action, node): kill / restart / repair-pass.
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["kill", "restart", "repair"]),
              st.sampled_from(FAULTY_NODES)),
    max_size=12)


def build(seed: int):
    cluster = Cluster(N_NODES, seed=seed)
    rng = np.random.default_rng(seed)
    ents = [Entity.create(cluster, node,
                          rng.integers(0, 150, size=48).astype(np.uint64))
            for node in ENTITY_NODES]
    concord = ConCORD(cluster, ConCORDConfig(use_network=False))
    concord.initial_scan()
    return cluster, ents, concord


def dht_state(concord, hashes):
    return (concord.total_tracked_hashes,
            {int(h): concord.tracing.lookup_mask(int(h))
             for h in hashes.tolist()})


class TestRepairConvergence:
    @SLOW
    @given(ops_strategy, st.integers(0, 3))
    def test_post_repair_state_equals_fresh_rebuild(self, ops, seed):
        _cluster, ents, concord = build(seed)
        hashes = np.unique(np.concatenate(
            [e.content_hashes() for e in ents]))
        down = set()
        for action, node in ops:
            if action == "kill" and node not in down:
                concord.fail_node(node)
                down.add(node)
            elif action == "restart" and node in down:
                concord.restart_node(node)
                down.discard(node)
            elif action == "repair":
                concord.repair()
            # Routing never dangles mid-schedule: every hash has a live home.
            assert concord.tracing.home_node(int(hashes[0])) not in down

        for node in sorted(down):
            concord.restart_node(node)
        concord.repair(full=True)
        assert concord.coverage == 1.0

        _c2, _e2, fresh = build(seed)      # identical workload, no faults
        assert dht_state(concord, hashes) == dht_state(fresh, hashes)

    @SLOW
    @given(ops_strategy, st.integers(0, 3))
    def test_coverage_stays_in_unit_interval_and_queries_answer(self, ops, seed):
        _cluster, ents, concord = build(seed)
        eids = [e.entity_id for e in ents]
        down = set()
        for action, node in ops:
            if action == "kill" and node not in down:
                concord.fail_node(node)
                down.add(node)
            elif action == "restart" and node in down:
                concord.restart_node(node)
                down.discard(node)
            elif action == "repair":
                concord.repair()
            assert 0.0 <= concord.coverage <= 1.0
            r = concord.sharing(eids)
            assert r.degraded == (r.coverage < 1.0)
            assert 0.0 <= r.value <= 1.0
