"""Property-based tests for system-level invariants.

These are the paper's load-bearing guarantees:

* query answers == brute-force recomputation for any workload (when the
  DHT view is synchronized);
* intra + inter sharing == total sharing, always;
* checkpoint/restore is the identity under *arbitrary* staleness — the
  two-phase service command's correctness claim.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CheckpointStore,
    Cluster,
    CollectiveCheckpoint,
    ConCORD,
    Entity,
    ServiceScope,
    restore_entity,
)
from repro.queries.reference import ReferenceModel

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def small_system(draw):
    """A cluster with 1-4 nodes and 1-5 entities of arbitrary content."""
    n_nodes = draw(st.integers(1, 4))
    n_entities = draw(st.integers(1, 5))
    cluster = Cluster(n_nodes, seed=draw(st.integers(0, 100)))
    entities = []
    for _ in range(n_entities):
        node = draw(st.integers(0, n_nodes - 1))
        pages = draw(st.lists(st.integers(0, 12), min_size=1, max_size=40))
        entities.append(Entity.create(
            cluster, node, np.array(pages, dtype=np.uint64)))
    return cluster, entities


class TestQueryEquivalence:
    @SLOW
    @given(small_system())
    def test_all_queries_match_reference(self, sys_):
        cluster, ents = sys_
        concord = ConCORD(cluster)
        concord.initial_scan()
        ref = ReferenceModel(cluster)
        eids = [e.entity_id for e in ents]

        assert concord.sharing(eids).value == pytest.approx(ref.sharing(eids))
        assert concord.intra_sharing(eids).value == pytest.approx(
            ref.intra_sharing(eids))
        assert concord.inter_sharing(eids).value == pytest.approx(
            ref.inter_sharing(eids))
        for k in (1, 2, 3):
            assert concord.num_shared_content(eids, k).value == \
                ref.num_shared_content(eids, k)
            assert concord.shared_content(eids, k).value == \
                ref.shared_content(eids, k)
        # node-wise spot checks
        counts = ref.copy_counts(eids)
        for h in list(counts)[:10]:
            assert concord.num_copies(h).value == counts[h]
            assert concord.entities(h).value == ref.entities(h)

    @SLOW
    @given(small_system())
    def test_sharing_decomposition_identity(self, sys_):
        cluster, ents = sys_
        concord = ConCORD(cluster)
        concord.initial_scan()
        eids = [e.entity_id for e in ents]
        assert (concord.intra_sharing(eids).value
                + concord.inter_sharing(eids).value) == pytest.approx(
            concord.sharing(eids).value)


class TestCheckpointUnderStaleness:
    @SLOW
    @given(small_system(),
           st.lists(st.tuples(st.integers(0, 4), st.integers(0, 39),
                              st.integers(0, 15)),
                    max_size=30),
           st.sampled_from(["interactive", "batch"]))
    def test_restore_is_identity_after_arbitrary_mutation(self, sys_,
                                                          writes, mode_name):
        """Scan, then mutate arbitrarily WITHOUT resyncing, then
        checkpoint: restore must equal the post-mutation ground truth."""
        from repro.core.command import ExecMode

        cluster, ents = sys_
        concord = ConCORD(cluster)
        concord.initial_scan()
        for ent_i, page_i, val in writes:
            e = ents[ent_i % len(ents)]
            e.write_page(page_i % e.n_pages, val)
        store = CheckpointStore()
        eids = [e.entity_id for e in ents]
        mode = (ExecMode.INTERACTIVE if mode_name == "interactive"
                else ExecMode.BATCH)
        result = concord.execute_command(CollectiveCheckpoint(store),
                                         ServiceScope.of(eids), mode=mode)
        assert result.success
        for e in ents:
            assert (restore_entity(store, e.entity_id) == e.pages).all()

    @SLOW
    @given(small_system())
    def test_shared_file_never_duplicates(self, sys_):
        cluster, ents = sys_
        concord = ConCORD(cluster)
        concord.initial_scan()
        store = CheckpointStore()
        concord.execute_command(CollectiveCheckpoint(store),
                                ServiceScope.of([e.entity_id for e in ents]))
        blocks = store.shared.blocks
        assert len(blocks) == len(set(blocks))

    @SLOW
    @given(small_system())
    def test_coverage_accounting_consistent(self, sys_):
        cluster, ents = sys_
        concord = ConCORD(cluster)
        concord.initial_scan()
        store = CheckpointStore()
        r = concord.execute_command(CollectiveCheckpoint(store),
                                    ServiceScope.of([e.entity_id
                                                     for e in ents]))
        s = r.stats
        assert s.covered_blocks + s.uncovered_blocks == s.local_blocks
        assert s.handled + s.stale_unhandled == s.believed_hashes
        assert s.local_blocks == sum(e.n_pages for e in ents)
