"""Property-based pinning of elastic membership (docs/ELASTICITY.md).

Two contracts:

* **Join/handoff convergence** — Hypothesis drives arbitrary
  interleavings of memory updates, node kills/restarts, repairs, and
  live joins (including writes landing *between* ``begin_join`` and
  ``complete_join``, the incremental-handoff window).  After the dust
  settles, every shard is byte-identical to a from-scratch bring-up of
  the same machine at the final membership — at every worker count, on
  RAM and persistent storage alike.

* **Flash-crowd byte-identity** — an open-loop overload on 8 nodes with
  the autoscaler live-joining to 32 produces, request for request, the
  same answer values as the same traffic against a static 32-node ring
  (and zero ``serve.cache.violations`` with the verifying cache on):
  scaling is invisible to clients except as capacity.
"""

import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Cluster, ConCORD, ConCORDConfig, Entity, StorageConfig

SLOW = settings(max_examples=6, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

N_NODES = 4
MAX_NODES = 8                  # the new-cluster testbed's physical cap
ENTITY_NODES = (0, 1)          # entities pinned here; their memory survives
FAULTY_NODES = (2, 3)          # kills/restarts only ever touch these

step_strategy = st.one_of(
    st.tuples(st.just("kill"), st.sampled_from(FAULTY_NODES)),
    st.tuples(st.just("restart"), st.sampled_from(FAULTY_NODES)),
    st.tuples(st.just("write"), st.integers(0, 200)),
    st.tuples(st.just("remove"), st.integers(0, 200)),
    st.tuples(st.just("repair"), st.just(0)),
    # "join" alternates begin/complete, so consecutive joins leave a
    # handoff pending across the steps in between — faults and writes
    # land inside the incremental window.
    st.tuples(st.just("join"), st.just(0)),
)

schedule_strategy = st.lists(step_strategy, min_size=1, max_size=12)


def make_machine(seed: int):
    cluster = Cluster(N_NODES, seed=seed)
    rng = np.random.default_rng(seed)
    ents = [Entity.create(cluster, node,
                          rng.integers(0, 150, size=48).astype(np.uint64))
            for node in ENTITY_NODES]
    return cluster, ents


def bring_up(cluster, workers, storage=None, placement="mod"):
    concord = ConCORD(cluster, ConCORDConfig(
        use_network=False, workers=workers, placement=placement,
        storage=storage if storage is not None
        else StorageConfig(backend="memory")))
    # Force real fan-out past the min_rows inline heuristic.
    concord.pool.min_rows = 0
    return concord


def shard_states(concord):
    mask = (1 << 80) - 1
    out = []
    for shard in concord.tracing.shards:
        hs, lo, wide = shard.se_scan(mask)
        out.append((hs.tolist(), lo.tolist(), wide,
                    dict(shard.extra_items()),
                    shard.n_hashes, shard.n_copies))
    return out


def apply_schedule(concord, ents, schedule):
    down = set()
    pending = False
    for action, arg in schedule:
        if action == "kill" and arg not in down:
            concord.fail_node(arg)
            down.add(arg)
        elif action == "restart" and arg in down:
            concord.restart_node(arg)
            down.discard(arg)
        elif action == "write":
            ents[arg % len(ents)].write_pages(
                np.array([arg % 48]),
                np.array([arg + 1000], dtype=np.uint64))
            concord.sync()
        elif action == "remove":
            ents[arg % len(ents)].write_pages(
                np.array([arg % 48]),
                np.array([arg % 150], dtype=np.uint64))
            concord.sync()
        elif action == "repair":
            concord.repair()
        elif action == "join":
            if pending:
                concord.complete_join()
                pending = False
            elif concord.cluster.n_nodes < MAX_NODES:
                concord.begin_join()
                pending = True
    # Settle: cut over a dangling handoff, rejoin the dead, converge.
    if pending:
        concord.complete_join()
    for node in sorted(down):
        concord.restart_node(node)
    concord.repair(full=True)


@pytest.mark.parametrize("backend", ("memory", "sqlite"))
@pytest.mark.parametrize("workers", (1, 4))
class TestJoinConvergenceProperty:
    @SLOW
    @given(schedule_strategy, st.integers(0, 3),
           st.sampled_from(["mod", "hd"]))
    def test_join_handoff_converges_to_fresh_bringup(self, backend, workers,
                                                     schedule, seed,
                                                     placement):
        root = (tempfile.mkdtemp(prefix="concord-elastic-")
                if backend != "memory" else None)
        try:
            storage = (StorageConfig(backend=backend, root=root)
                       if root else None)
            cluster, ents = make_machine(seed)

            concord = bring_up(cluster, workers, storage,
                               placement=placement)
            try:
                concord.initial_scan()
                apply_schedule(concord, ents, schedule)
                got = shard_states(concord)
            finally:
                concord.close()

            # Ground truth: a from-scratch bring-up of the same machine
            # at the final (grown) membership, RAM-only, serial.
            fresh = bring_up(cluster, workers=1, placement=placement)
            try:
                fresh.initial_scan()
                fresh.repair(full=True)
                want = shard_states(fresh)
            finally:
                fresh.close()

            assert got == want
        finally:
            if root:
                shutil.rmtree(root, ignore_errors=True)


def _norm(v):
    if isinstance(v, np.ndarray):
        return tuple(v.tolist())
    if isinstance(v, (list, tuple)):
        return tuple(_norm(x) for x in v)
    return v


def _serve_run(n_nodes, autoscale, seed):
    """One traffic run; returns (report, {(client, t_submit): answer},
    completed joins, final node count)."""
    from repro.serve.autoscaler import AutoscalerConfig
    from repro.serve.config import ServeConfig
    from repro.workloads import TrafficSpec, instantiate, moldy

    cluster = Cluster(n_nodes, cost="big-cluster", seed=seed)
    # The same entities regardless of ring size (they live on nodes 0-7),
    # so both runs trace identical content.
    instantiate(cluster, moldy(8, 256, seed=seed))
    cfg = ServeConfig(queue_limit=100_000, verify_cache=True)
    concord = ConCORD(cluster, ConCORDConfig(serve=cfg, placement="hd"))
    concord.initial_scan()
    spec = TrafficSpec(n_clients=8, duration_s=0.16,
                       rate_per_client=2000.0, seed=seed)
    scale = (AutoscalerConfig(max_nodes=32, queue_depth_high=0.0,
                              p95_high_s=0.0)
             if autoscale else None)
    rep = concord.serve(spec, autoscale=scale, keep_responses=True)
    answers = {(r.request.client_id, r.request.t_submit):
               (r.request.op, _norm(r.request.args), _norm(r.value))
               for r in concord._last_traffic.responses}
    joins = (concord._last_autoscaler.joins
             if concord._last_autoscaler is not None else [])
    return rep, answers, joins, concord.cluster.n_nodes


class TestFlashCrowdProperty:
    @settings(max_examples=2, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 3))
    def test_scale_8_to_32_is_byte_identical_to_static(self, seed):
        rep_e, ans_e, joins, n_final = _serve_run(8, autoscale=True,
                                                  seed=seed)
        # The flash crowd drove the ring all the way out, live.
        assert n_final == 32
        assert len(joins) == 24
        assert rep_e.cache_violations == 0
        assert rep_e.rejected == 0

        rep_s, ans_s, _, _ = _serve_run(32, autoscale=False, seed=seed)
        assert rep_s.cache_violations == 0
        assert rep_s.rejected == 0

        # Same submissions, and answer-for-answer identical values.
        assert set(ans_e) == set(ans_s)
        assert ans_e == ans_s
