"""Property-based determinism test for the multi-core execution backend.

The ShardPool contract (docs/PARALLEL.md): ``workers=N`` is byte-identical
to ``workers=1`` — reductions merge in shard-index order, never completion
order, and workers run the same kernels the serial path runs inline.
Hypothesis drives arbitrary interleavings of memory updates, node
kills/restarts, anti-entropy repairs, and collective queries against one
system per worker count and compares every answer, every repair report,
and the final per-shard columnar state.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Cluster, ConCORD, ConCORDConfig, Entity
from repro.exec import ops

SLOW = settings(max_examples=6, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

WORKER_COUNTS = (1, 4, 8)
N_NODES = 4
ENTITY_NODES = (0, 1)          # entities pinned here; their memory survives
FAULTY_NODES = (2, 3)          # kills/restarts only ever touch these

step_strategy = st.one_of(
    st.tuples(st.just("kill"), st.sampled_from(FAULTY_NODES)),
    st.tuples(st.just("restart"), st.sampled_from(FAULTY_NODES)),
    st.tuples(st.just("repair"), st.just(0)),
    st.tuples(st.just("write"), st.integers(0, 200)),
    st.tuples(st.just("remove"), st.integers(0, 200)),
    st.tuples(st.just("q_sharing"), st.just(0)),
    st.tuples(st.just("q_degree"), st.just(0)),
    st.tuples(st.just("q_shared_k"), st.integers(1, 3)),
    st.tuples(st.just("q_shared_set"), st.integers(1, 3)),
    st.tuples(st.just("mr_hist"), st.just(0)),
)

schedule_strategy = st.lists(step_strategy, min_size=1, max_size=12)


def build(seed: int, workers: int):
    cluster = Cluster(N_NODES, seed=seed)
    rng = np.random.default_rng(seed)
    ents = [Entity.create(cluster, node,
                          rng.integers(0, 150, size=48).astype(np.uint64))
            for node in ENTITY_NODES]
    concord = ConCORD(cluster, ConCORDConfig(use_network=False,
                                             workers=workers))
    # Tiny tables would stay inline behind the min_rows heuristic; force
    # real fan-out so the property exercises the parallel path.
    concord.pool.min_rows = 0
    concord.initial_scan()
    return cluster, ents, concord


def shard_states(concord):
    """Byte-comparable columnar state of every shard."""
    mask = (1 << 80) - 1
    out = []
    for shard in concord.tracing.shards:
        hs, lo, wide = shard.se_scan(mask)
        out.append((hs.tolist(), lo.tolist(), wide,
                    dict(shard.extra_items()),
                    shard.n_hashes, shard.n_copies))
    return out


class TestWorkerCountInvariance:
    @SLOW
    @given(schedule_strategy, st.integers(0, 3))
    def test_any_schedule_is_worker_count_invariant(self, schedule, seed):
        systems = [build(seed, w) for w in WORKER_COUNTS]
        try:
            eids = [e.entity_id for e in systems[0][1]]
            down = set()
            for action, arg in schedule:
                results = []
                for _cluster, ents, concord in systems:
                    if action == "kill" and arg not in down:
                        concord.fail_node(arg)
                    elif action == "restart" and arg in down:
                        concord.restart_node(arg)
                    elif action == "repair":
                        results.append(concord.repair())
                    elif action == "write":
                        ents[arg % len(ents)].write_pages(
                            np.array([arg % 48]),
                            np.array([arg + 1000], dtype=np.uint64))
                        concord.sync()
                    elif action == "remove":
                        ents[arg % len(ents)].write_pages(
                            np.array([arg % 48]),
                            np.array([arg % 150], dtype=np.uint64))
                        concord.sync()
                    elif action == "q_sharing":
                        results.append(concord.sharing(eids))
                    elif action == "q_degree":
                        results.append(concord.degree_of_sharing(eids))
                    elif action == "q_shared_k":
                        results.append(concord.num_shared_content(eids, arg))
                    elif action == "q_shared_set":
                        results.append(concord.shared_content(eids, arg))
                    elif action == "mr_hist":
                        results.append(concord.map_shards(
                            ops.copy_histogram, ((1 << 80) - 1,)))
                if action == "kill":
                    down.add(arg)
                elif action == "restart":
                    down.discard(arg)
                if results:
                    for got in results[1:]:
                        assert got == results[0], \
                            f"{action} diverged across worker counts"
            # Final sweep: execution state itself must be byte-identical,
            # not just the answers observed along the way.
            want = shard_states(systems[0][2])
            for _cl, _e, concord in systems[1:]:
                assert shard_states(concord) == want
            reports = [c.repair(full=True) for _cl, _e, c in systems]
            assert all(r == reports[0] for r in reports)
            want = shard_states(systems[0][2])
            for _cl, _e, concord in systems[1:]:
                assert shard_states(concord) == want
        finally:
            for _cl, _e, concord in systems:
                concord.close()


class TestPoolPlumbing:
    def test_facade_owns_one_pool(self):
        _cl, _e, concord = build(0, workers=4)
        try:
            assert concord.pool.workers == 4
            assert concord.tracing.pool is concord.pool
            assert concord.queries._collective.pool is concord.pool
        finally:
            concord.close()

    def test_close_is_idempotent(self):
        _cl, _e, concord = build(0, workers=2)
        concord.map_shards(ops.copy_histogram, (255,))
        concord.close()
        concord.close()

    def test_workers_env_default(self, monkeypatch):
        monkeypatch.setenv("CONCORD_WORKERS", "3")
        assert ConCORDConfig().workers == 3
        monkeypatch.setenv("CONCORD_WORKERS", "bogus")
        assert ConCORDConfig().workers == 1
        monkeypatch.delenv("CONCORD_WORKERS")
        assert ConCORDConfig().workers == 1

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ConCORD(Cluster(2, seed=0), ConCORDConfig(use_network=False,
                                                      workers=0))
