"""Property-based test for the update-epoch result cache (docs/SERVING.md).

The serving cache's contract: under ANY interleaving of memory updates,
node kills/restarts/repairs, and queries, a cache-enabled answer is
byte-identical to the answer the uncached query path would produce at the
same instant.  Hypothesis drives arbitrary schedules against a cached and
an uncached view of the *same* system and compares every answer —
including the modelled latency, coverage, and degraded flag, not just the
value.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Cluster, ConCORD, ConCORDConfig, Entity
from repro.queries.interface import QueryInterface
from repro.serve import CachedQueries

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

N_NODES = 4
ENTITY_NODES = (0, 1)          # entities pinned here; their memory survives
FAULTY_NODES = (2, 3)          # kills/restarts only ever touch these

# One step of a schedule: a fault action, a memory update, or a query.
step_strategy = st.one_of(
    st.tuples(st.just("kill"), st.sampled_from(FAULTY_NODES)),
    st.tuples(st.just("restart"), st.sampled_from(FAULTY_NODES)),
    st.tuples(st.just("repair"), st.just(0)),
    st.tuples(st.just("write"), st.integers(0, 200)),   # new content id
    st.tuples(st.just("remove"), st.integers(0, 200)),
    st.tuples(st.just("q_num_copies"), st.integers(0, 220)),
    st.tuples(st.just("q_entities"), st.integers(0, 220)),
    st.tuples(st.just("q_sharing"), st.integers(0, 3)),
    st.tuples(st.just("q_degree"), st.integers(0, 3)),
    st.tuples(st.just("q_shared_k"), st.integers(1, 3)),
)

schedule_strategy = st.lists(step_strategy, min_size=1, max_size=30)


def build(seed: int):
    cluster = Cluster(N_NODES, seed=seed)
    rng = np.random.default_rng(seed)
    ents = [Entity.create(cluster, node,
                          rng.integers(0, 150, size=48).astype(np.uint64))
            for node in ENTITY_NODES]
    concord = ConCORD(cluster, ConCORDConfig(use_network=False))
    concord.initial_scan()
    return cluster, ents, concord


class TestCacheEquivalence:
    @SLOW
    @given(schedule_strategy, st.integers(0, 3))
    def test_cached_answers_equal_uncached(self, schedule, seed):
        cluster, ents, concord = build(seed)
        queries = QueryInterface(cluster, concord.tracing)
        cached = CachedQueries(queries)
        eids = [e.entity_id for e in ents]
        down = set()
        for action, arg in schedule:
            if action == "kill" and arg not in down:
                concord.fail_node(arg)
                down.add(arg)
            elif action == "restart" and arg in down:
                concord.restart_node(arg)
                down.discard(arg)
            elif action == "repair":
                concord.repair()
            elif action == "write":
                ents[arg % len(ents)].write_pages(
                    np.array([arg % 48]),
                    np.array([arg + 1000], dtype=np.uint64))
                concord.sync()
            elif action == "remove":
                ents[arg % len(ents)].write_pages(
                    np.array([arg % 48]),
                    np.array([arg % 150], dtype=np.uint64))
                concord.sync()
            elif action == "q_num_copies":
                got, _hit = cached.num_copies(arg, arg % N_NODES)
                assert got == queries.num_copies(arg, arg % N_NODES)
            elif action == "q_entities":
                got, _hit = cached.entities(arg, arg % N_NODES)
                assert got == queries.entities(arg, arg % N_NODES)
            elif action == "q_sharing":
                got, _hit = cached.sharing(eids)
                assert got == queries.sharing(eids)
            elif action == "q_degree":
                got, _hit = cached.degree_of_sharing(eids)
                assert got == queries.degree_of_sharing(eids)
            elif action == "q_shared_k":
                got, _hit = cached.num_shared_content(eids, arg)
                assert got == queries.num_shared_content(eids, arg)
        # Final sweep: every hot key answers identically after the dust
        # settles (and a second pass hits without changing the answer).
        for h in range(0, 220, 7):
            got, _ = cached.num_copies(h, h % N_NODES)
            assert got == queries.num_copies(h, h % N_NODES)
            again, hit = cached.num_copies(h, h % N_NODES)
            assert hit and again == got
