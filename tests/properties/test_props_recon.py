"""Property-based pinning of recon repair (docs/RECONCILIATION.md).

Hypothesis drives arbitrary interleavings of node kills, restarts, and
memory mutations, then converges the DHT with the set-reconciliation
path.  The pinned property: ``repair(mode="recon")`` leaves every shard
*byte-identical* to a cold full-NSM rebuild of the same machine — at
every worker count, on every storage backend, after any schedule.
"""

import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Cluster, ConCORD, ConCORDConfig, Entity, StorageConfig

SLOW = settings(max_examples=6, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

N_NODES = 4
ENTITY_NODES = (0, 1)          # entities pinned here; their memory survives
FAULTY_NODES = (2, 3)          # kills/restarts only ever touch these

step_strategy = st.one_of(
    st.tuples(st.just("kill"), st.sampled_from(FAULTY_NODES)),
    st.tuples(st.just("restart"), st.sampled_from(FAULTY_NODES)),
    st.tuples(st.just("write"), st.integers(0, 200)),
    st.tuples(st.just("remove"), st.integers(0, 200)),
    st.tuples(st.just("recon"), st.just(0)),
)

schedule_strategy = st.lists(step_strategy, min_size=1, max_size=10)


def make_machine(seed: int):
    cluster = Cluster(N_NODES, seed=seed)
    rng = np.random.default_rng(seed)
    ents = [Entity.create(cluster, node,
                          rng.integers(0, 150, size=48).astype(np.uint64))
            for node in ENTITY_NODES]
    return cluster, ents


def bring_up(cluster, workers, backend="memory", root=None):
    concord = ConCORD(cluster, ConCORDConfig(
        use_network=False, workers=workers,
        storage=StorageConfig(backend=backend, root=root)))
    concord.pool.min_rows = 0
    return concord


def shard_states(concord):
    mask = (1 << 80) - 1
    out = []
    for shard in concord.tracing.shards:
        hs, lo, wide = shard.se_scan(mask)
        out.append((hs.tolist(), lo.tolist(), wide,
                    dict(shard.extra_items()),
                    shard.n_hashes, shard.n_copies))
    return out


def apply_schedule(concord, ents, schedule):
    down = set()
    for action, arg in schedule:
        if action == "kill" and arg not in down:
            concord.fail_node(arg)
            down.add(arg)
        elif action == "restart" and arg in down:
            concord.restart_node(arg)
            down.discard(arg)
        elif action == "write":
            ents[arg % len(ents)].write_pages(
                np.array([arg % 48]),
                np.array([arg + 1000], dtype=np.uint64))
            concord.sync()
        elif action == "remove":
            ents[arg % len(ents)].write_pages(
                np.array([arg % 48]),
                np.array([arg % 150], dtype=np.uint64))
            concord.sync()
        elif action == "recon":
            concord.repair(mode="recon")
    for node in sorted(down):
        concord.restart_node(node)


@pytest.mark.parametrize("backend", ("memory", "sqlite"))
@pytest.mark.parametrize("workers", (1, 4))
class TestReconRepairProperty:
    @SLOW
    @given(schedule_strategy, st.integers(0, 3))
    def test_recon_equals_cold_rebuild(self, backend, workers,
                                       schedule, seed):
        root = tempfile.mkdtemp(prefix="concord-recon-")
        try:
            cluster, ents = make_machine(seed)

            concord = bring_up(cluster, workers, backend, root)
            try:
                concord.initial_scan()
                apply_schedule(concord, ents, schedule)
                report = concord.repair(mode="recon")
                assert report.bytes_wire >= 0
                assert report.rounds >= 0
                got = shard_states(concord)
            finally:
                concord.close()

            # Ground truth: a cold rebuild of the same machine, RAM-only.
            cold = bring_up(cluster, workers=1)
            try:
                cold.initial_scan()
                cold.repair(full=True)
                want = shard_states(cold)
            finally:
                cold.close()

            assert got == want
        finally:
            shutil.rmtree(root, ignore_errors=True)

    @SLOW
    @given(schedule_strategy, st.integers(0, 3))
    def test_recon_reports_divergent_nodes(self, backend, workers,
                                           schedule, seed):
        """node_ops names exactly the shards recon had to touch."""
        root = tempfile.mkdtemp(prefix="concord-recon-")
        try:
            cluster, ents = make_machine(seed)
            concord = bring_up(cluster, workers, backend, root)
            try:
                concord.initial_scan()
                apply_schedule(concord, ents, schedule)
                report = concord.repair(mode="recon")
                touched = sum(i + r for _n, i, r in report.node_ops)
                assert touched == (report.copies_restored
                                   + report.copies_removed)
                # A second recon pass on a converged system is a no-op.
                again = concord.repair(mode="recon")
                assert again.node_ops == ()
                assert again.copies_restored == again.copies_removed == 0
            finally:
                concord.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)
