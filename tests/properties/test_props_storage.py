"""Property-based pinning of the warm-restart contract (docs/STORAGE.md).

Hypothesis drives arbitrary interleavings of memory updates, node
kills, cold/warm rejoins, repairs, and durability flushes against a
system on a persistent backend; the process then "dies" (close = flush +
release) and restarts on the same storage root.  The pinned property:
``warm_restart()`` leaves every shard *byte-identical* to a cold
full-NSM rebuild of the same machine — at every worker count, on every
persistent backend, after any schedule.
"""

import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (Cluster, ConCORD, ConCORDConfig, Entity, StorageConfig)

SLOW = settings(max_examples=6, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

N_NODES = 4
ENTITY_NODES = (0, 1)          # entities pinned here; their memory survives
FAULTY_NODES = (2, 3)          # kills/restarts only ever touch these

step_strategy = st.one_of(
    st.tuples(st.just("kill"), st.sampled_from(FAULTY_NODES)),
    st.tuples(st.just("restart_cold"), st.sampled_from(FAULTY_NODES)),
    st.tuples(st.just("restart_warm"), st.sampled_from(FAULTY_NODES)),
    st.tuples(st.just("write"), st.integers(0, 200)),
    st.tuples(st.just("remove"), st.integers(0, 200)),
    st.tuples(st.just("repair"), st.just(0)),
    st.tuples(st.just("flush"), st.just(0)),
)

schedule_strategy = st.lists(step_strategy, min_size=1, max_size=10)


def make_machine(seed: int):
    """Cluster + entities: 'the machine', which outlives the service."""
    cluster = Cluster(N_NODES, seed=seed)
    rng = np.random.default_rng(seed)
    ents = [Entity.create(cluster, node,
                          rng.integers(0, 150, size=48).astype(np.uint64))
            for node in ENTITY_NODES]
    return cluster, ents


def bring_up(cluster, workers, storage=None):
    concord = ConCORD(cluster, ConCORDConfig(
        use_network=False, workers=workers,
        storage=storage if storage is not None
        else StorageConfig(backend="memory")))
    # Tiny tables would stay inline behind the min_rows heuristic; force
    # real fan-out so the property exercises the parallel path too.
    concord.pool.min_rows = 0
    return concord


def shard_states(concord):
    mask = (1 << 80) - 1
    out = []
    for shard in concord.tracing.shards:
        hs, lo, wide = shard.se_scan(mask)
        out.append((hs.tolist(), lo.tolist(), wide,
                    dict(shard.extra_items()),
                    shard.n_hashes, shard.n_copies))
    return out


def apply_schedule(concord, ents, schedule):
    down = set()
    for action, arg in schedule:
        if action == "kill" and arg not in down:
            concord.fail_node(arg)
            down.add(arg)
        elif action == "restart_cold" and arg in down:
            concord.restart_node(arg)
            down.discard(arg)
        elif action == "restart_warm" and arg in down:
            concord.restart_node(arg, warm=True)
            down.discard(arg)
        elif action == "write":
            ents[arg % len(ents)].write_pages(
                np.array([arg % 48]),
                np.array([arg + 1000], dtype=np.uint64))
            concord.sync()
        elif action == "remove":
            ents[arg % len(ents)].write_pages(
                np.array([arg % 48]),
                np.array([arg % 150], dtype=np.uint64))
            concord.sync()
        elif action == "repair":
            concord.repair()
        elif action == "flush":
            concord.tracing.flush_storage()
    # Rejoin whatever is still down so the final states are comparable
    # across runs with and without persistent shards.
    for node in sorted(down):
        concord.restart_node(node)
    concord.repair(full=True)


@pytest.mark.parametrize("backend", ("mmap", "sqlite"))
@pytest.mark.parametrize("workers", (1, 4))
class TestWarmRestartProperty:
    @SLOW
    @given(schedule_strategy, st.integers(0, 3))
    def test_warm_restart_equals_cold_rebuild(self, backend, workers,
                                              schedule, seed):
        root = tempfile.mkdtemp(prefix="concord-props-")
        try:
            cluster, ents = make_machine(seed)
            storage = StorageConfig(backend=backend, root=root)

            concord = bring_up(cluster, workers, storage)
            try:
                concord.initial_scan()
                apply_schedule(concord, ents, schedule)
            finally:
                concord.close()          # the process dies: flush + release

            # The restarted service process: same machine, same root.
            warm = bring_up(cluster, workers, storage)
            try:
                assert warm.storage_recovered is True
                warm.warm_restart()
                got = shard_states(warm)
            finally:
                warm.close()

            # Ground truth: a cold rebuild of the same machine, RAM-only.
            cold = bring_up(cluster, workers=1)
            try:
                cold.initial_scan()
                cold.repair(full=True)
                want = shard_states(cold)
            finally:
                cold.close()

            assert got == want
        finally:
            shutil.rmtree(root, ignore_errors=True)
