"""Property-based tests for the application services' headline invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CheckpointStore,
    Cluster,
    CollectiveCheckpoint,
    CollectiveDedup,
    ConCORD,
    Entity,
    ServiceScope,
)
from repro.services.migrate import CollectiveMigration, MigrationPlan

SLOW = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def migration_world(draw):
    """Two source VMs with arbitrary content overlap and a destination."""
    n_pages = draw(st.integers(4, 40))
    pool = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 500))
    rng = np.random.default_rng(seed)
    cluster = Cluster(4, seed=seed)
    vms = [Entity.create(cluster, i,
                         rng.integers(0, pool, n_pages).astype(np.uint64))
           for i in range(2)]
    concord = ConCORD(cluster)
    concord.initial_scan()
    return cluster, vms, concord


class TestMigrationProps:
    @SLOW
    @given(migration_world())
    def test_bytes_sent_bounded_by_distinct_content(self, world):
        """Migration never ships more than min(raw, distinct + fallback)
        and never less than the distinct content (nothing is free unless
        a destination-resident copy exists — there is none here)."""
        cluster, vms, concord = world
        eids = [v.entity_id for v in vms]
        plan = MigrationPlan({e: 3 for e in eids})
        svc = CollectiveMigration(plan)
        result = concord.execute_command(svc, ServiceScope.of(eids))
        assert result.success
        sent = sum(c.state.bytes_sent for c in result.contexts.values()
                   if c.state)
        raw = CollectiveMigration.raw_bytes(cluster, eids)
        distinct = len(np.unique(np.concatenate(
            [v.content_hashes() for v in vms])))
        assert distinct * 4096 <= sent <= raw
        # Memory is intact after relocation.
        snaps = [v.snapshot() for v in vms]
        svc.finish(concord)
        for v, s in zip(vms, snaps):
            assert v.node_id == 3
            assert (v.snapshot() == s).all()


class TestDedupProps:
    @SLOW
    @given(st.lists(st.integers(0, 6), min_size=1, max_size=40),
           st.integers(0, 100))
    def test_savings_equal_same_node_duplicates(self, page_ids, seed):
        from collections import Counter

        cluster = Cluster(2, seed=seed)
        e = Entity.create(cluster, 0, np.array(page_ids, dtype=np.uint64))
        concord = ConCORD(cluster)
        concord.initial_scan()
        svc = CollectiveDedup()
        concord.execute_command(svc, ServiceScope.of([e.entity_id]))
        dup_pages = sum(c - 1 for c in Counter(page_ids).values())
        assert svc.merged_pages_total() == dup_pages
        assert svc.saved_bytes_total() == dup_pages * 4096
        assert (e.pages == np.array(page_ids, dtype=np.uint64)).all()

    @SLOW
    @given(st.lists(st.integers(0, 3), min_size=2, max_size=24),
           st.lists(st.tuples(st.integers(0, 23), st.integers(0, 3)),
                    max_size=30))
    def test_cow_accounting_never_negative(self, page_ids, writes):
        cluster = Cluster(1, seed=0)
        e = Entity.create(cluster, 0, np.array(page_ids, dtype=np.uint64))
        concord = ConCORD(cluster)
        concord.initial_scan()
        svc = CollectiveDedup()
        concord.execute_command(svc, ServiceScope.of([e.entity_id]))
        svc.arm_cow(cluster)
        for idx, val in writes:
            e.write_page(idx % e.n_pages, val)
            assert svc.saved_bytes_total() >= 0
            # Saved bytes never exceed current same-node duplication.
            from collections import Counter
            dup_now = sum(c - 1 for c in
                          Counter(e.pages.tolist()).values())
            assert svc.saved_bytes_total() <= dup_now * 4096


class TestCheckpointSizeProps:
    @SLOW
    @given(st.lists(st.lists(st.integers(0, 15), min_size=1, max_size=30),
                    min_size=1, max_size=4),
           st.integers(0, 200))
    def test_concord_size_bounded_by_raw_and_distinct(self, layouts, seed):
        """distinct*page <= concord_size <= raw_size + records overhead."""
        cluster = Cluster(4, seed=seed)
        ents = [Entity.create(cluster, i % 4,
                              np.array(pages, dtype=np.uint64))
                for i, pages in enumerate(layouts)]
        concord = ConCORD(cluster)
        concord.initial_scan()
        store = CheckpointStore()
        r = concord.execute_command(
            CollectiveCheckpoint(store),
            ServiceScope.of([e.entity_id for e in ents]))
        assert r.success
        distinct = len(np.unique(np.concatenate(
            [e.content_hashes() for e in ents])))
        assert store.shared.n_blocks == distinct
        assert distinct * 4096 <= store.concord_size_bytes
        assert store.concord_size_bytes <= store.raw_size_bytes * 1.02 + 4096
