"""Property-based tests (hypothesis) for core data structures."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.dht.partition import Partition
from repro.dht.table import LocalDHT
from repro.memory.monitor import multiset_diff
from repro.util.bitmap import EntityBitmap
from repro.util.hashing import mix64, page_hashes, unmix64

ids = st.integers(min_value=0, max_value=2**64 - 1)
entity_ids = st.integers(min_value=0, max_value=300)


class TestHashingProps:
    @given(ids)
    def test_mix64_bijective(self, x):
        assert int(unmix64(mix64(x))) == x

    @given(st.lists(ids, min_size=1, max_size=200))
    def test_page_hashes_respect_equality_structure(self, xs):
        arr = np.array(xs, dtype=np.uint64)
        hs = page_hashes(arr)
        # equal ids <-> equal hashes (bijection)
        for i in range(len(xs)):
            for j in range(i + 1, min(i + 5, len(xs))):
                assert (xs[i] == xs[j]) == (hs[i] == hs[j])


class TestBitmapProps:
    @given(st.lists(st.tuples(st.booleans(), entity_ids), max_size=150))
    def test_matches_multiset_model(self, ops):
        from collections import Counter

        b = EntityBitmap()
        model = Counter()
        for add, eid in ops:
            if add:
                b.add(eid)
                model[eid] += 1
            else:
                ok = b.discard(eid)
                assert ok == (model[eid] > 0)
                if ok:
                    model[eid] -= 1
        assert b.num_copies == sum(model.values())
        assert b.to_set() == {e for e, c in model.items() if c > 0}
        for eid, c in model.items():
            assert b.copies(eid) == c

    @given(st.lists(entity_ids, max_size=60), st.lists(entity_ids, max_size=60))
    def test_set_algebra(self, xs, ys):
        a, b = EntityBitmap(xs), EntityBitmap(ys)
        assert a.intersection_count(b) == len(set(xs) & set(ys))
        assert a.union_count(b) == len(set(xs) | set(ys))
        assert a.intersects(b) == bool(set(xs) & set(ys))


class TestLocalDHTProps:
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(0, 30),
                              st.integers(0, 8)),
                    max_size=200))
    def test_multiset_semantics(self, ops):
        from collections import Counter

        t = LocalDHT()
        model = Counter()
        for ins, h, e in ops:
            if ins:
                t.insert(h, e)
                model[(h, e)] += 1
            else:
                ok = t.remove(h, e)
                assert ok == (model[(h, e)] > 0)
                if ok:
                    model[(h, e)] -= 1
        assert t.n_copies == sum(model.values())
        for h in {h for h, _ in model}:
            assert t.entity_ids(h) == sorted(
                {e for (hh, e), c in model.items() if hh == h and c > 0})
            assert t.num_copies(h) == sum(
                c for (hh, _e), c in model.items() if hh == h)


class TestPartitionProps:
    @given(st.lists(ids, min_size=1, max_size=100),
           st.integers(min_value=1, max_value=64))
    def test_grouping_is_a_partition(self, hs, n_nodes):
        p = Partition(n_nodes)
        arr = np.array(hs, dtype=np.uint64)
        groups = p.group_by_home(arr)
        seen = sorted(np.concatenate(list(groups.values())).tolist())
        assert seen == list(range(len(hs)))
        for home, idxs in groups.items():
            assert 0 <= home < n_nodes
            assert all(p.home_node(int(arr[i])) == home for i in idxs)


class TestMultisetDiffProps:
    @given(st.lists(st.integers(0, 20), max_size=80),
           st.lists(st.integers(0, 20), max_size=80))
    def test_diff_transforms_old_into_new(self, old, new):
        from collections import Counter

        o = np.array(old, dtype=np.uint64)
        n = np.array(new, dtype=np.uint64)
        ins, rem = multiset_diff(o, n)
        c = Counter(o.tolist())
        for h in rem.tolist():
            c[h] -= 1
        for h in ins.tolist():
            c[h] += 1
        assert +c == Counter(n.tolist())

    @given(st.lists(st.integers(0, 20), max_size=80))
    def test_self_diff_empty(self, xs):
        arr = np.array(xs, dtype=np.uint64)
        ins, rem = multiset_diff(arr, arr)
        assert len(ins) == 0 and len(rem) == 0
