"""Property tests: the columnar LocalDHT bulk/scan APIs are observationally
equivalent to the per-item insert/remove/items() semantics, including the
>64-entity wide-mask spill path and interleaved insert/remove sequences."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.table import LocalDHT

# A tiny hash universe forces heavy collisions (multicopy + extras paths);
# entity ids beyond 63 exercise the wide-mask spill.
hashes = st.integers(min_value=0, max_value=40)
eids = st.integers(min_value=0, max_value=130)
pairs = st.lists(st.tuples(hashes, eids), min_size=0, max_size=50)
batches = st.lists(st.tuples(st.booleans(), pairs), min_size=1, max_size=8)


def _as_arrays(ps):
    h = np.fromiter((p[0] for p in ps), dtype=np.uint64, count=len(ps))
    e = np.fromiter((p[1] for p in ps), dtype=np.int64, count=len(ps))
    return h, e


def _observe(dht):
    return (list(dht.items()), dht.n_hashes, dht.n_copies,
            {h: dict(ex) for h, ex in dht.extra_items() if ex})


class TestBulkEquivalence:
    @given(batches)
    @settings(max_examples=80, deadline=None)
    def test_interleaved_bulk_matches_per_item(self, seq):
        ref, col = LocalDHT(), LocalDHT()
        for is_insert, ps in seq:
            h, e = _as_arrays(ps)
            if is_insert:
                for hh, ee in ps:
                    ref.insert(hh, ee)
                col.bulk_insert(h, e)
            else:
                want_applied = sum(bool(ref.remove(hh, ee)) for hh, ee in ps)
                assert col.bulk_remove(h, e) == want_applied
        assert _observe(col) == _observe(ref)

    @given(pairs)
    @settings(max_examples=60, deadline=None)
    def test_bulk_insert_matches_per_item(self, ps):
        ref, col = LocalDHT(), LocalDHT()
        for hh, ee in ps:
            ref.insert(hh, ee)
        h, e = _as_arrays(ps)
        col.bulk_insert(h, e)
        assert _observe(col) == _observe(ref)
        for hh, ee in ps:
            assert col.copies_of(hh, ee) == ref.copies_of(hh, ee)
            assert col.entities_mask(hh) == ref.entities_mask(hh)
            assert col.num_copies(hh) == ref.num_copies(hh)


class TestScanEquivalence:
    @given(batches, st.sets(eids, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_se_scan_matches_items_filter(self, seq, scan_eids):
        dht = LocalDHT()
        for is_insert, ps in seq:
            h, e = _as_arrays(ps)
            if is_insert:
                dht.bulk_insert(h, e)
            else:
                dht.bulk_remove(h, e)
        mask = 0
        for ee in scan_eids:
            mask |= 1 << ee
        want = {hh: m for hh, m in dht.items() if m & mask}
        got_h, got_lo, wide = dht.se_scan(mask)
        got = {}
        for i, hh in enumerate(got_h.tolist()):
            got[hh] = wide[hh] if hh in wide else int(got_lo[i])
        assert got == want
        assert sorted(got) == got_h.tolist()  # sorted hash order

    @given(batches)
    @settings(max_examples=60, deadline=None)
    def test_items_arrays_reconstructs_items(self, seq):
        dht = LocalDHT()
        for is_insert, ps in seq:
            h, e = _as_arrays(ps)
            if is_insert:
                dht.bulk_insert(h, e)
            else:
                dht.bulk_remove(h, e)
        ph, pm, pw = dht.items_arrays()
        rebuilt = [(hh, int(pm[i]) | (pw.get(hh, 0) << 64))
                   for i, hh in enumerate(ph.tolist())]
        assert rebuilt == list(dht.items())
        assert len(ph) == dht.n_hashes

    @given(batches, st.lists(hashes, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_bulk_point_lookups_match_scalar(self, seq, queries):
        dht = LocalDHT()
        for is_insert, ps in seq:
            h, e = _as_arrays(ps)
            if is_insert:
                dht.bulk_insert(h, e)
            else:
                dht.bulk_remove(h, e)
        q = np.asarray(queries, dtype=np.uint64)
        masks_lo, wide = dht.bulk_masks(q)
        counts = dht.bulk_num_copies(q)
        for i, hh in enumerate(queries):
            full = wide[hh] if hh in wide else int(masks_lo[i])
            assert full == dht.entities_mask(hh)
            assert int(counts[i]) == dht.num_copies(hh)
