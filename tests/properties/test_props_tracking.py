"""Property-based tests for the tracking pipeline (monitor -> NSM -> DHT).

The pipeline invariant: after any interleaving of writes and monitor
passes, one final scan+flush makes the DHT's multiset equal the ground
truth exactly (when no datagrams are lost).
"""

from collections import Counter

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Cluster, ConCORD, ConCORDConfig, Entity, MonitorMode

SLOW = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

# An op is (entity_idx, page_idx, value, scan_after?).
ops_strategy = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 15), st.integers(0, 20),
              st.booleans()),
    max_size=60)


def dht_multiset(concord) -> Counter:
    """(hash -> copies) across all shards."""
    out: Counter = Counter()
    for shard in concord.tracing.shards:
        for h, mask in shard.items():
            copies = mask.bit_count()
            for _e, extra in shard.extra_copies(h).items():
                copies += extra
            out[h] += copies
    return out


def truth_multiset(cluster) -> Counter:
    out: Counter = Counter()
    for e in cluster.entities.values():
        for h in e.content_hashes().tolist():
            out[int(h)] += 1
    return out


class TestConvergence:
    @SLOW
    @given(ops_strategy,
           st.sampled_from([MonitorMode.PERIODIC_SCAN, MonitorMode.DIRTY_BIT]))
    def test_final_sync_equals_ground_truth(self, ops, mode):
        cluster = Cluster(3, seed=1)
        ents = [Entity.create(cluster, i % 3,
                              np.arange(16, dtype=np.uint64) + 100 * i)
                for i in range(3)]
        concord = ConCORD(cluster, ConCORDConfig(monitor_mode=mode))
        concord.initial_scan()
        for ent_i, page_i, val, scan_after in ops:
            ents[ent_i].write_page(page_i, val)
            if scan_after:
                concord.sync()
        concord.sync()
        assert dht_multiset(concord) == truth_multiset(cluster)

    @SLOW
    @given(ops_strategy)
    def test_write_fault_mode_converges_without_scans(self, ops):
        """True CoW: every write reported at fault time; no periodic scan
        needed beyond the initial one."""
        cluster = Cluster(2, seed=2)
        ents = [Entity.create(cluster, i % 2,
                              np.arange(16, dtype=np.uint64) + 100 * i)
                for i in range(3)]
        concord = ConCORD(cluster, ConCORDConfig(monitor_mode=MonitorMode.COW))
        concord.initial_scan()
        for mon in concord.monitors:
            mon.enable_write_faults()
        for ent_i, page_i, val, _scan in ops:
            ents[ent_i].write_page(page_i, val)
        for mon in concord.monitors:
            mon.flush()
        assert dht_multiset(concord) == truth_multiset(cluster)

    @SLOW
    @given(ops_strategy, st.integers(1, 30))
    def test_throttled_monitor_converges_eventually(self, ops, rate):
        """Throttling defers updates but never loses them: enough flush
        intervals always reach ground truth."""
        cluster = Cluster(2, seed=3)
        ents = [Entity.create(cluster, i % 2,
                              np.arange(8, dtype=np.uint64) + 100 * i)
                for i in range(2)]
        concord = ConCORD(cluster,
                          ConCORDConfig(throttle_updates_per_s=float(rate)))
        for mon in concord.monitors:
            mon.initial_scan()
        for ent_i, page_i, val, _ in ops:
            ents[ent_i % 2].write_page(page_i % 8, val)
        for mon in concord.monitors:
            mon.scan()
        # Drain: at most ceil(pending/rate) unit intervals each.
        for mon in concord.monitors:
            for _ in range(200):
                if mon.pending_updates == 0:
                    break
                mon.flush(interval=1.0)
        assert dht_multiset(concord) == truth_multiset(cluster)

    @SLOW
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=3, unique=True))
    def test_detach_removes_exactly_that_entity(self, victims):
        cluster = Cluster(3, seed=4)
        ents = [Entity.create(cluster, i,
                              np.arange(12, dtype=np.uint64) + 50 * i)
                for i in range(3)]
        concord = ConCORD(cluster)
        concord.initial_scan()
        for v in victims:
            concord.detach_entity(ents[v].entity_id)
        survivors = [e for i, e in enumerate(ents) if i not in victims]
        want: Counter = Counter()
        for e in survivors:
            for h in e.content_hashes().tolist():
                want[int(h)] += 1
        assert dht_multiset(concord) == want
