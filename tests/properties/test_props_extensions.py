"""Property-based tests for the extension subsystems."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.costmodel import NEW_CLUSTER
from repro.sim.engine import SimEngine
from repro.sim.network import Network
from repro.storage import AppendLog, IOCosts
from repro.util.records import Message, MsgKind, UpdateBatch

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class TestAppendLogProps:
    @given(st.lists(st.tuples(st.integers(0, 40), st.integers(0, 4096)),
                    max_size=120))
    def test_append_once_is_a_function_of_key(self, ops):
        """Whatever the interleaving, each key maps to exactly one offset
        and the payload first associated with it."""
        log = AppendLog("t", IOCosts())
        first: dict[int, int] = {}
        for key, size in ops:
            off, created = log.append_once(key, f"payload-{key}", size)
            if key in first:
                assert not created
                assert off == first[key]
            else:
                assert created
                first[key] = off
        assert log.n_records == len(first)
        for key, off in first.items():
            assert log.read(off) == f"payload-{key}"

    @given(st.lists(st.integers(0, 10_000), max_size=100))
    def test_total_bytes_is_sum(self, sizes):
        log = AppendLog("t", IOCosts())
        for i, s in enumerate(sizes):
            log.append(i, s)
        assert log.total_bytes == sum(sizes)


class TestNetworkConservation:
    @SLOW
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3),
                              st.integers(1, 64)),
                    min_size=1, max_size=300))
    def test_sent_equals_delivered_plus_dropped(self, sends):
        """Message conservation: after the engine drains, every datagram
        was either delivered or dropped — none lingers, none duplicates."""
        eng = SimEngine()
        net = Network(eng, NEW_CLUSTER, 4)
        delivered = []
        for src, dst, n in sends:
            net.send(UpdateBatch(MsgKind.UPDATE, src, dst,
                                 inserts=[(i, 0) for i in range(n)]),
                     on_deliver=lambda m: delivered.append(m))
        eng.run()
        s = net.stats
        assert s.msgs_sent == len(sends)
        assert s.msgs_delivered + s.msgs_dropped == s.msgs_sent
        assert len(delivered) == s.msgs_delivered
        assert s.updates_sent == sum(n for _s, _d, n in sends)
        assert s.updates_lost <= s.updates_sent

    @SLOW
    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)),
                    min_size=1, max_size=60))
    def test_rdma_messages_never_dropped_under_light_load(self, pairs):
        eng = SimEngine()
        net = Network(eng, NEW_CLUSTER, 3)
        for src, dst in pairs:
            net.send(Message(MsgKind.UPDATE, src, dst, one_sided=True))
        eng.run()
        assert net.stats.msgs_dropped == 0


class TestPlacementProps:
    @SLOW
    @given(st.integers(2, 12), st.integers(1, 4), st.integers(0, 50))
    def test_colocation_is_total_and_capacity_safe(self, n_entities,
                                                   capacity, seed):
        import networkx as nx

        from repro.analysis import placement_sharing_score, suggest_colocation

        rng = np.random.default_rng(seed)
        g = nx.Graph()
        g.add_nodes_from(range(n_entities))
        for a in range(n_entities):
            for b in range(a + 1, n_entities):
                if rng.random() < 0.4:
                    g.add_edge(a, b, weight=int(rng.integers(1, 100)))
        n_nodes = (n_entities + capacity - 1) // capacity
        placement = suggest_colocation(g, n_nodes=n_nodes, capacity=capacity)
        assert set(placement) == set(range(n_entities))
        from collections import Counter
        assert max(Counter(placement.values()).values()) <= capacity
        assert placement_sharing_score(g, placement) >= 0


class TestVMProps:
    @SLOW
    @given(st.integers(1, 32), st.integers(0, 8), st.integers(0, 4),
           st.integers(0, 10**6))
    def test_guest_address_space_partitions(self, ram, device, rom, seed):
        from repro.memory.vm import VirtualMachine
        from repro.sim.cluster import Cluster

        cluster = Cluster(1, seed=0)
        vm = VirtualMachine(
            cluster, 0, np.arange(ram, dtype=np.uint64) + seed,
            device_pages=device,
            rom_pages=(np.arange(rom, dtype=np.uint64) + 10**9
                       if rom else None))
        # Every guest page belongs to exactly one region.
        total = vm.n_guest_pages
        assert total == ram + device + rom
        for gp in range(total):
            r = vm.region_of(gp)
            assert r.contains(gp)
            vm.guest_read(gp)  # readable everywhere
        with pytest.raises(ValueError):
            vm.region_of(total)


class TestIncrementalProps:
    @SLOW
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 9)),
                    max_size=25),
           st.integers(0, 1000))
    def test_increment_plus_base_is_identity(self, writes, seed):
        from repro import (CheckpointStore, Cluster, CollectiveCheckpoint,
                           ConCORD, Entity, ServiceScope)
        from repro.services.incremental import (
            IncrementalCheckpoint, restore_incremental_entity)

        cluster = Cluster(2, seed=seed)
        e = Entity.create(cluster, 0,
                          np.arange(32, dtype=np.uint64) + seed * 100)
        concord = ConCORD(cluster)
        concord.initial_scan()
        base = CheckpointStore()
        concord.execute_command(CollectiveCheckpoint(base),
                                ServiceScope.of([e.entity_id]))
        for idx, val in writes:
            e.write_page(idx % 32, val)
        # No resync: maximum staleness.
        inc = CheckpointStore()
        r = concord.execute_command(IncrementalCheckpoint(inc, base),
                                    ServiceScope.of([e.entity_id]))
        assert r.success
        assert (restore_incremental_entity(inc, base, e.entity_id)
                == e.pages).all()
