#!/usr/bin/env python3
"""Quickstart: bring ConCORD up on a simulated cluster and use it.

Walks the whole public API in one sitting:

1. build a cluster and a workload with known redundancy;
2. bring up the ConCORD platform service and scan memory;
3. ask node-wise and collective queries (paper Fig 3);
4. run the collective checkpointing service command (paper §6);
5. restore an entity and verify bit-for-bit equality;
6. recreate the paper's Fig 13 two-SE worked example.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CheckpointStore,
    Cluster,
    CollectiveCheckpoint,
    ConCORD,
    Entity,
    ServiceScope,
    restore_entity,
    workloads,
)
from repro.util.stats import fmt_bytes, fmt_time_s


def main() -> None:
    # -- 1. a 4-node machine running a Moldy-like redundant workload --------
    cluster = Cluster(n_nodes=4, cost="new-cluster", seed=7)
    entities = workloads.instantiate(cluster, workloads.moldy(4, 2048, seed=7))
    eids = [e.entity_id for e in entities]
    total = sum(e.memory_bytes for e in entities)
    print(f"cluster: {cluster.n_nodes} nodes ({cluster.cost.name}), "
          f"{len(entities)} processes, {fmt_bytes(total)} of memory")

    # -- 2. bring up the platform service (context manager = clean teardown) --
    with ConCORD.from_config(cluster) as concord:
        n_updates = concord.initial_scan()
        print(f"initial scan: {n_updates} updates, "
              f"{concord.total_tracked_hashes} distinct hashes tracked")

        # -- 3. queries --------------------------------------------------------
        sharing = concord.sharing(eids)
        print(f"\nsharing({len(eids)} entities)      = {sharing.value:.3f} "
              f"(latency {fmt_time_s(sharing.latency)})")
        print(f"intra_sharing              = "
              f"{concord.intra_sharing(eids).value:.3f}")
        print(f"inter_sharing              = "
              f"{concord.inter_sharing(eids).value:.3f}")
        print(f"degree of sharing (DoS)    = "
              f"{concord.degree_of_sharing(eids).value:.3f}")
        k = 4
        print(f"num_shared_content(k={k})    = "
              f"{concord.num_shared_content(eids, k).value} hashes "
              f"with >= {k} copies")

        some_hash = int(entities[0].content_hashes()[0])
        print(f"num_copies(0x{some_hash:016x}) = "
              f"{concord.num_copies(some_hash).value}, held by entities "
              f"{sorted(concord.entities(some_hash).value)}")

        # -- 4. the collective checkpoint service command ----------------------
        store = CheckpointStore()
        result = concord.execute_command(CollectiveCheckpoint(store),
                                         ServiceScope.of(eids))
        s = result.stats
        print(f"\ncollective checkpoint: success={result.success} in "
              f"{fmt_time_s(result.wall_time)} (simulated)")
        print(f"  collective phase handled {s.handled} distinct blocks "
              f"({s.retries} retries, {s.stale_unhandled} stale)")
        print(f"  local phase: {s.covered_blocks}/{s.local_blocks} blocks "
              f"were pointers ({s.coverage:.1%} coverage)")
        print(f"  raw size     {fmt_bytes(store.raw_size_bytes)}")
        print(f"  ConCORD size {fmt_bytes(store.concord_size_bytes)} "
              f"(ratio {store.compression_ratio:.1%})")

        # -- 5. restore and verify ---------------------------------------------
        for e in entities:
            assert (restore_entity(store, e.entity_id) == e.pages).all()
        print("restore: all entities verified bit-for-bit")

    # -- 6. the paper's Fig 13 example ---------------------------------------------
    print("\nFig 13 worked example (2 SEs, 4 pages each):")
    c2 = Cluster(2, seed=0)
    A, B, C, E = 0xA0, 0xB0, 0xC0, 0xE0
    se1 = Entity.create(c2, 0, np.array([A, E, 0x100, B], dtype=np.uint64))
    se2 = Entity.create(c2, 1, np.array([B, C, E, 0x200], dtype=np.uint64))
    with ConCORD.from_config(c2) as k2:
        k2.initial_scan()
        # Content written after the scan is unknown to ConCORD (paper's X).
        se1.write_page(2, 0x101)
        se2.write_page(3, 0x201)
        st2 = CheckpointStore()
        k2.execute_command(CollectiveCheckpoint(st2),
                           ServiceScope.of([se1.entity_id, se2.entity_id]))
    for se in (se1, se2):
        f = st2.se_files[se.entity_id]
        recs = []
        for kind, idx, h, payload in sorted(f.records, key=lambda r: r[1]):
            if kind == "ptr":
                recs.append(f"{idx}:{h & 0xFFF:03x}:{payload}")
            else:
                recs.append(f"{idx}:X:content")
        print(f"  SE{se.entity_id} checkpoint file: " + "  ".join(recs))
    print(f"  shared content file: {st2.shared.n_blocks} distinct blocks "
          f"(8 logical blocks stored as "
          f"{st2.shared.n_blocks + sum(f.n_data_records for f in st2.se_files.values())})")
    for se in (se1, se2):
        assert (restore_entity(st2, se.entity_id) == se.pages).all()
    print("  restore verified for both SEs")


if __name__ == "__main__":
    main()
