#!/usr/bin/env python3
"""VM gang migration and reconstruction over ConCORD.

Two more application services built as content-aware service commands
(the second and third services of paper §6):

* **Collective migration** — move a gang of VMs to fresh nodes, sending
  each distinct memory block at most once, and sending nothing at all for
  blocks some entity at the destination already holds.
* **Collective reconstruction** — bring a checkpointed VM back on a new
  node, pulling as much of its image as possible from the *live* memory
  of similar VMs (cheap) and only the remainder from checkpoint storage
  (expensive).

The VMs share content (same guest OS image), which is exactly what both
services exploit.

Run:  python examples/vm_migration_and_reconstruction.py
"""

import numpy as np

from repro import (
    CheckpointStore,
    Cluster,
    CollectiveCheckpoint,
    CollectiveMigration,
    CollectiveReconstruction,
    ConCORD,
    Entity,
    EntityKind,
    ServiceScope,
)
from repro.services.migrate import MigrationPlan
from repro.services.reconstruct import ImageDescriptor, register_image
from repro.util.stats import fmt_bytes, fmt_time_s


def make_vm(cluster, node, os_pages, n_private, tag, rng):
    """A VM = shared guest-OS image pages + private working set."""
    private = rng.integers(tag << 32, (tag + 1) << 32, n_private,
                           dtype=np.uint64)
    pages = np.concatenate([os_pages, private])
    rng.shuffle(pages)
    return Entity.create(cluster, node, pages, kind=EntityKind.VM,
                         name=f"vm-{tag}")


def main() -> None:
    rng = np.random.default_rng(31)
    cluster = Cluster(8, cost="big-cluster", seed=31)
    os_pages = np.arange(1024, dtype=np.uint64) + 10_000  # shared OS image

    # Three VMs on nodes 0-2 (to be migrated), one unrelated VM already on
    # the destination side that happens to run the same OS.
    gang = [make_vm(cluster, i, os_pages, 512, tag=i + 1, rng=rng)
            for i in range(3)]
    resident = make_vm(cluster, 6, os_pages, 512, tag=9, rng=rng)
    with ConCORD.from_config(cluster) as concord:
        concord.initial_scan()

        gang_ids = [vm.entity_id for vm in gang]
        raw = CollectiveMigration.raw_bytes(cluster, gang_ids)
        print(f"migrating {len(gang)} VMs ({fmt_bytes(raw)}) from nodes 0-2 "
              f"to nodes 6-7; an unrelated VM with the same OS lives on "
              f"node 6")

        # -- migration as a service command -----------------------------------
        plan = MigrationPlan({gang_ids[0]: 6, gang_ids[1]: 7, gang_ids[2]: 7})
        svc = CollectiveMigration(plan)
        result = concord.execute_command(
            svc, ServiceScope.of(gang_ids, [resident.entity_id]))
        sent = sum(c.state.bytes_sent for c in result.contexts.values()
                   if c.state)
        local = sum(c.state.blocks_local_at_dest
                    for c in result.contexts.values() if c.state)
        print(f"  done in {fmt_time_s(result.wall_time)} (simulated)")
        print(f"  bytes sent {fmt_bytes(sent)} = {sent / raw:.1%} of naive; "
              f"{local} blocks were already resident at the destination")
        svc.finish(concord)
        concord.sync()
        print(f"  VMs now on nodes {[vm.node_id for vm in gang]}, "
              f"memory intact, tracking resumed")

        # -- checkpoint one VM, destroy it, reconstruct from live peers --------
        victim = gang[0]
        store = CheckpointStore()
        concord.execute_command(CollectiveCheckpoint(store),
                                ServiceScope.of([victim.entity_id]))
        descriptor_src = victim.entity_id
        image = victim.snapshot()
        print(f"\ncheckpointed {victim.name} "
              f"({fmt_bytes(store.concord_size_bytes)} on disk); "
              f"destroying it")
        concord.detach_entity(victim.entity_id)

        # A blank replacement VM on node 3; its believed content is the image.
        target = Entity.create(cluster, 3,
                               np.zeros(len(image), dtype=np.uint64),
                               kind=EntityKind.VM, name="vm-restored")
        concord.attach_entity(target)
        concord.sync()
        descriptor = ImageDescriptor.from_checkpoint(store, descriptor_src)
        descriptor = ImageDescriptor(entity_id=target.entity_id,
                                     hashes=descriptor.hashes,
                                     page_size=descriptor.page_size)
        register_image(concord, target, descriptor)

        recon = CollectiveReconstruction(descriptor, store,
                                         backing_entity_id=descriptor_src)
        peers = [vm.entity_id for vm in gang[1:]] + [resident.entity_id]
        result = concord.execute_command(
            recon, ServiceScope.of([target.entity_id], peers))
        st = [c.state for c in result.contexts.values() if c.state]
        net = sum(s.from_network for s in st)
        disk = sum(s.from_storage for s in st)
        print(f"reconstruction finished in {fmt_time_s(result.wall_time)} "
              f"(simulated): {net} blocks from live VM memory, "
              f"{disk} from checkpoint storage "
              f"({net / (net + disk):.1%} served without touching storage)")
        assert (target.pages == image).all()
        print("restored VM verified identical to the stored image")


if __name__ == "__main__":
    main()
