#!/usr/bin/env python3
"""Writing your own content-aware service command: a content audit.

The paper's pitch is that an application service is "a parametrization of
a single general query" — you write node-local callbacks, ConCORD runs
them with parallelism, replica selection, retry, and correctness handled
for you.  Collective checkpointing took ~230 lines of C; this audit
service takes ~60 lines of Python.

The service scans memory for blacklisted content (think malware
signatures or leaked-secret detection).  The redundancy win: each
*distinct* block is deep-scanned once in the collective phase, no matter
how many entities hold copies; the local phase then attributes hits to
every entity holding a flagged block — including content the DHT missed.

Run:  python examples/custom_service_content_audit.py
"""

from dataclasses import dataclass, field

import numpy as np

from repro import (
    Cluster,
    ConCORD,
    ServiceCallbacks,
    ServiceScope,
    workloads,
)
from repro.util.stats import fmt_time_s


@dataclass
class AuditState:
    deep_scans: int = 0                      # expensive signature scans run
    hits: dict = field(default_factory=dict)  # entity -> flagged page idxs


class ContentAuditService(ServiceCallbacks):
    """Flag every page whose content matches a blacklist — scanning each
    distinct block exactly once."""

    name = "content-audit"

    def __init__(self, blacklist: set[int]) -> None:
        self.blacklist = blacklist  # content IDs considered bad

    def service_init(self, ctx, config):
        ctx.state = AuditState()

    def collective_command(self, ctx, entity, content_hash, block):
        # The expensive part: deep-scan the block (signature matching).
        content = ctx.read_block(block)
        ctx.charge_per_block(ctx.cost.page_touch * 4)  # 4x a plain touch
        ctx.state.deep_scans += 1
        return bool(content in self.blacklist)  # private data = verdict

    def local_command(self, ctx, entity, page_idx, content_hash, block,
                      handled_private):
        if handled_private is None:
            # Content ConCORD didn't know: deep-scan it now (correctness).
            flagged = entity.read_page(page_idx) in self.blacklist
            ctx.charge_per_block(ctx.cost.page_touch * 4)
            ctx.state.deep_scans += 1
        else:
            flagged = handled_private is True
        if flagged:
            ctx.state.hits.setdefault(entity.entity_id, []).append(page_idx)


def main() -> None:
    cluster = Cluster(8, cost="new-cluster", seed=41)
    entities = workloads.instantiate(cluster, workloads.moldy(8, 2048, seed=41))
    eids = [e.entity_id for e in entities]
    with ConCORD.from_config(cluster) as concord:
        concord.initial_scan()

        # Blacklist a few content IDs that actually occur (one from the
        # shared pool, so many entities hold it).
        rng = np.random.default_rng(42)
        bad = {int(entities[0].read_page(5)), int(entities[3].read_page(100))}
        # Plant one *after* the scan, so the DHT doesn't know about it.
        entities[1].write_page(7, 0xBAD0BAD0)
        bad.add(0xBAD0BAD0)

        svc = ContentAuditService(bad)
        result = concord.execute_command(svc, ServiceScope.of(eids))

    total_pages = sum(e.n_pages for e in entities)
    deep = sum(c.state.deep_scans for c in result.contexts.values()
               if c.state)
    print(f"audited {total_pages} pages across {len(entities)} processes in "
          f"{fmt_time_s(result.wall_time)} (simulated)")
    print(f"deep scans actually run: {deep} "
          f"({deep / total_pages:.1%} of a naive per-page audit — "
          f"redundancy did the rest)")

    print("\nflagged pages:")
    all_hits = {}
    for ctx in result.contexts.values():
        if ctx.state:
            for eid, idxs in ctx.state.hits.items():
                all_hits.setdefault(eid, []).extend(idxs)
    for eid in sorted(all_hits):
        entity = cluster.entity(eid)
        print(f"  {entity.name} (node {entity.node_id}): "
              f"{len(all_hits[eid])} pages, e.g. {sorted(all_hits[eid])[:5]}")

    # Verify against a brute-force audit.
    expect = {}
    for e in entities:
        idxs = [i for i in range(e.n_pages) if int(e.read_page(i)) in bad]
        if idxs:
            expect[e.entity_id] = sorted(idxs)
    assert {k: sorted(v) for k, v in all_hits.items()} == expect
    print("\nverified against a brute-force page-by-page audit")
    # The planted post-scan page was caught by the local phase:
    assert 7 in all_hits[entities[1].entity_id]
    print("the secret planted after the last scan was still caught "
          "(local-phase correctness)")


if __name__ == "__main__":
    main()
