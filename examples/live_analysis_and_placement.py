#!/usr/bin/env python3
"""Live redundancy analysis driving sharing-aware placement.

A tools-on-top-of-the-platform story (the paper's refactoring argument):
with content tracking factored into ConCORD, a profiler, a placement
advisor, and the migration engine are all thin clients of the same data.

1. Six VMs from two "families" (two different guest OS images) start
   scattered across four nodes; applications churn their private memory
   while ConCORD's monitors track everything.
2. A redundancy profiler snapshots sharing over (simulated) time.
3. A Memory-Buddies-style advisor builds the sharing graph from DHT state
   and suggests a co-location that maximizes intra-node sharing.
4. Collective migration executes the suggestion, moving each distinct
   block at most once.
5. The profiler confirms intra-node sharing (what KSM-style dedup could
   reclaim locally) went up.

Run:  python examples/live_analysis_and_placement.py
"""

import numpy as np

from repro import Cluster, ConCORD, Entity, EntityKind, ServiceScope
from repro.analysis import (
    RedundancyProfiler,
    sharing_graph,
    suggest_colocation,
    placement_sharing_score,
    top_shared_content,
)
from repro.services.migrate import CollectiveMigration, MigrationPlan
from repro.workloads import ChurnDriver
from repro.util.stats import fmt_bytes


def make_family_vm(cluster, node, image, tag, rng, private=256):
    pages = np.concatenate([
        image, rng.integers(tag << 40, (tag + 1) << 40, private,
                            dtype=np.uint64)])
    rng.shuffle(pages)
    return Entity.create(cluster, node, pages, kind=EntityKind.VM,
                         name=f"vm-{tag}")


def main() -> None:
    rng = np.random.default_rng(55)
    cluster = Cluster(4, cost="new-cluster", seed=55)
    image_a = np.arange(512, dtype=np.uint64) + 1_000_000   # debian image
    image_b = np.arange(512, dtype=np.uint64) + 2_000_000   # rhel image
    # Deliberately bad placement: every co-resident pair is cross-family,
    # so no node-local sharing exists to start with.
    vms = [
        make_family_vm(cluster, 0, image_a, 1, rng),
        make_family_vm(cluster, 0, image_b, 2, rng),
        make_family_vm(cluster, 1, image_a, 3, rng),
        make_family_vm(cluster, 1, image_b, 4, rng),
        make_family_vm(cluster, 2, image_a, 5, rng),
        make_family_vm(cluster, 3, image_b, 6, rng),
    ]
    eids = [vm.entity_id for vm in vms]
    with ConCORD.from_config(cluster) as concord:
        concord.initial_scan()
        print(f"6 VMs ({fmt_bytes(sum(vm.memory_bytes for vm in vms))}) on 4 "
              f"nodes; two guest images, interleaved placement")

        # -- churn + periodic profiling on the simulated clock -----------------
        profiler = RedundancyProfiler(concord, eids)
        profiler.snapshot(time=0.0)
        ChurnDriver(vms, pages_per_tick=8, pattern="hotspot",
                    seed=55).run_on(cluster.engine, period=1.0, horizon=6.0)
        profiler.run_on(cluster.engine, period=2.0, horizon=6.0)
        cluster.engine.run()
        print("\nredundancy under churn:")
        print(profiler.report().render(float_fmt="{:.3f}"))

        top = top_shared_content(concord, eids, n=3)
        print("\nmost replicated content: "
              + ", ".join(f"0x{h:012x} x{c}" for h, c in top))

        # -- sharing-aware placement -------------------------------------------
        g = sharing_graph(concord, eids)
        current = {vm.entity_id: vm.node_id for vm in vms}
        suggestion = suggest_colocation(g, n_nodes=3, capacity=2)
        print(f"\nplacement advisor: intra-node shared hashes "
              f"{placement_sharing_score(g, current)} now -> "
              f"{placement_sharing_score(g, suggestion)} if applied")

        # -- act on it with collective migration -------------------------------
        moves = {eid: node for eid, node in suggestion.items()
                 if node != current[eid]}
        print(f"migrating {len(moves)} VMs to realise the suggestion")
        svc = CollectiveMigration(MigrationPlan(moves))
        pes = [e for e in eids if e not in moves]
        result = concord.execute_command(svc,
                                         ServiceScope.of(list(moves), pes))
        sent = sum(c.state.bytes_sent for c in result.contexts.values()
                   if c.state)
        raw = CollectiveMigration.raw_bytes(cluster, list(moves))
        print(f"  moved {fmt_bytes(sent)} over the wire "
              f"({sent / raw:.0%} of a naive migration)")
        svc.finish(concord)
        concord.sync()

        before = profiler.history[-1].intra_sharing
        after = profiler.snapshot().intra_sharing
        print(f"\nintra-node sharing: {before:.3f} -> {after:.3f} "
              f"(local dedup potential unlocked by co-location)")
        assert after > before


if __name__ == "__main__":
    main()
