#!/usr/bin/env python3
"""Memory pressure and fault resilience: the paper's intro, end to end.

ConCORD's introduction motivates the platform with three services; this
example runs them back to back over one tracking instance:

1. **Deduplication** (intro example 1): merge same-content pages within
   each node, KSM-style, and watch copy-on-write faults un-merge pages as
   the application writes.
2. **Replication** (intro example 2): raise every distinct block of a
   critical process to >= 2 copies across nodes — paying only for blocks
   whose redundancy doesn't already exist.
3. **Recovery** (intro example 3, via reconstruction): "kill" the
   process, then rebuild its image on a fresh node — mostly from the
   replicas that step 2 placed in live memory, exercising the whole loop.

Run:  python examples/memory_pressure_and_resilience.py
"""

import numpy as np

from repro import Cluster, ConCORD, Entity, ServiceScope, workloads
from repro.services.checkpoint import CheckpointStore, CollectiveCheckpoint
from repro.services.dedup import CollectiveDedup
from repro.services.reconstruct import (
    CollectiveReconstruction,
    ImageDescriptor,
    register_image,
)
from repro.services.replicate import CollectiveReplication, make_replica_stores
from repro.util.stats import fmt_bytes


def main() -> None:
    cluster = Cluster(6, cost="new-cluster", seed=77)
    ents = workloads.instantiate(cluster, workloads.moldy(4, 1024, seed=77))
    eids = [e.entity_id for e in ents]
    with ConCORD.from_config(cluster) as concord:
        stores = make_replica_stores(cluster, [4, 5], capacity_pages=4096,
                                     concord=concord)
        concord.initial_scan()
        total = sum(e.memory_bytes for e in ents)
        print(f"{len(ents)} processes, {fmt_bytes(total)}, on nodes 0-3; "
              f"replica stores on nodes 4-5")

        # -- 1. deduplication --------------------------------------------------
        dedup = CollectiveDedup()
        concord.execute_command(dedup, ServiceScope.of(eids))
        dedup.arm_cow(cluster)
        print(f"\n[dedup] merged {dedup.merged_pages_total()} pages; "
              f"{fmt_bytes(dedup.saved_bytes_total())} of memory pressure "
              f"relieved ({dedup.saved_bytes_total() / total:.1%})")
        # The application keeps writing; CoW faults break sharing honestly.
        rng = np.random.default_rng(78)
        ents[0].mutate_random(0.1, rng)
        st = dedup._states[ents[0].node_id]
        print(f"[dedup] after 10% churn on {ents[0].name}: "
              f"{st.cow_breaks} CoW breaks, savings now "
              f"{fmt_bytes(dedup.saved_bytes_total())}")
        concord.sync()

        # -- 2. replication of a critical process ------------------------------
        victim = ents[0]
        repl = CollectiveReplication(concord, k=2, stores=stores)
        result = concord.execute_command(repl,
                                         ServiceScope.of([victim.entity_id]))
        concord.sync()
        distinct = len(np.unique(victim.content_hashes()))
        print(f"\n[replicate] {victim.name}: {distinct} distinct blocks; "
              f"{repl.total('replicated') + repl.total('defensive')} replicas "
              f"created ({fmt_bytes(repl.total('bytes_shipped'))} shipped) — "
              f"existing redundancy covered the rest")

        # -- 3. failure and recovery -------------------------------------------
        image = victim.snapshot()
        descriptor_hashes = victim.content_hashes().copy()
        # A safety-net checkpoint for content replicas may miss.
        backing = CheckpointStore()
        concord.execute_command(CollectiveCheckpoint(backing),
                                ServiceScope.of([victim.entity_id]))
        backing_id = victim.entity_id
        print(f"\n[fail] node {victim.node_id} loses {victim.name}")
        concord.detach_entity(victim.entity_id)

        target = Entity.create(cluster, 5,
                               np.zeros(len(image), dtype=np.uint64),
                               name="recovered")
        concord.attach_entity(target)
        concord.sync()
        desc = ImageDescriptor(entity_id=target.entity_id,
                               hashes=descriptor_hashes)
        register_image(concord, target, desc)
        peers = [e.entity_id for e in ents[1:]] + \
            [s.entity.entity_id for s in stores.values()]
        recon = CollectiveReconstruction(desc, backing,
                                         backing_entity_id=backing_id)
        r = concord.execute_command(recon,
                                    ServiceScope.of([target.entity_id],
                                                    peers))
        states = [c.state for c in r.contexts.values() if c.state]
        net = sum(s.from_network for s in states)
        disk = sum(s.from_storage for s in states)
        assert (target.pages == image).all()
        print(f"[recover] rebuilt on node 5: {net} blocks from live memory "
              f"(peers + replicas), {disk} from checkpoint storage "
              f"({net / max(1, net + disk):.1%} storage-free)")
        print("[recover] image verified bit-for-bit — the redundancy placed "
              "in step 2 carried the recovery")


if __name__ == "__main__":
    main()
