#!/usr/bin/env python3
"""Collective checkpointing of a running (mutating) application.

The scenario the content-aware service command exists for: the DHT's view
of memory is *stale* — the application keeps writing between monitor scans
— yet the checkpoint must be exact.  This example:

1. runs a Moldy-like application across 8 nodes with ConCORD tracing it
   on a periodic scan cycle;
2. lets the application churn memory after the last scan, so a sizable
   fraction of the DHT is wrong;
3. takes a collective checkpoint anyway, showing the two-phase execution:
   stale hashes detected via replica retries, missed content picked up by
   the local phase;
4. verifies restore is still bit-exact, and compares checkpoint sizes and
   times against raw and raw+gzip baselines (paper Figs 14-16);
5. writes the checkpoint to disk with real page bytes and loads it back.

Run:  python examples/checkpoint_under_churn.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    CheckpointStore,
    Cluster,
    CollectiveCheckpoint,
    ConCORD,
    RawCheckpoint,
    ServiceScope,
    restore_entity,
    workloads,
)
from repro.util.stats import fmt_bytes, fmt_time_s


def main() -> None:
    spec = workloads.moldy(8, 1024, seed=21)
    cluster = Cluster(8, cost="old-cluster", seed=21)
    entities = workloads.instantiate(cluster, spec)
    eids = [e.entity_id for e in entities]
    with ConCORD.from_config(cluster) as concord:
        concord.initial_scan()
        print(f"tracking {len(entities)} processes on {cluster.n_nodes} "
              f"nodes; {concord.total_tracked_hashes} hashes in the DHT")

        # -- the application keeps running: churn after the scan ---------------
        rng = np.random.default_rng(22)
        for e in entities:
            e.mutate_random(0.3, rng)
        print("application mutated 30% of its pages since the last scan "
              "(the DHT does not know)")

        # -- checkpoint through the service command ----------------------------
        store = CheckpointStore()
        result = concord.execute_command(CollectiveCheckpoint(store),
                                         ServiceScope.of(eids))
    s = result.stats
    print(f"\ncheckpoint completed in {fmt_time_s(result.wall_time)} "
          f"(simulated old-cluster time)")
    print(f"  DHT believed {s.believed_hashes} distinct hashes; "
          f"{s.stale_unhandled} were stale (every replica gone), "
          f"{s.retries} replica retries")
    print(f"  collective phase coverage: {s.coverage:.1%}; "
          f"{s.uncovered_blocks} blocks fell back to the local phase")

    for e in entities:
        assert (restore_entity(store, e.entity_id) == e.pages).all()
    print("  restore == post-mutation memory for every entity (exact)")

    # -- baselines ----------------------------------------------------------------
    raw = RawCheckpoint()
    _r1, t_raw = raw.run(cluster, eids)
    _r2, t_gzip = raw.run(cluster, eids, gzip=True)
    raw_gz_size, cc_gz_size = store.gzip_sizes_model(spec.gzip_content_ratio)
    print("\nstrategy comparison:")
    rows = [
        ("raw", t_raw, store.raw_size_bytes),
        ("raw+gzip", t_gzip, raw_gz_size),
        ("ConCORD", result.wall_time, store.concord_size_bytes),
        ("ConCORD+gzip", result.wall_time
         + store.shared.size_bytes * cluster.cost.gzip_per_byte, cc_gz_size),
    ]
    for name, t, size in rows:
        print(f"  {name:<13} time {fmt_time_s(t):>8}   size "
              f"{fmt_bytes(size):>8}  ({size / store.raw_size_bytes:6.1%} of raw)")

    # -- on-disk round trip with real bytes ------------------------------------------
    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "ckpt"
        store.write_to_dir(path)
        n_files = len(list(path.iterdir()))
        on_disk = sum(f.stat().st_size for f in path.iterdir())
        loaded = CheckpointStore.load_from_dir(path)
        for e in entities:
            assert (restore_entity(loaded, e.entity_id) == e.pages).all()
        print(f"\non-disk checkpoint: {n_files} files, "
              f"{fmt_bytes(on_disk)}; loaded back and re-verified")


if __name__ == "__main__":
    main()
